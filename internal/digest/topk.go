package digest

import (
	"sort"
	"sync"
)

// topKCapacity is the space-saving sketch width: enough monitored
// counters to rank the true top handful of sharding-key values under
// realistic skew, small enough that the O(k) min-scan on a miss stays
// in-cache.
const topKCapacity = 128

// keyItem is one monitored sharding-key value. Count overestimates the
// true frequency by at most MaxError (the classic space-saving bound:
// the evicted counter's value is inherited, so true ≥ Count - MaxError).
type keyItem struct {
	Table, Column, Value string
	Count, MaxError      int64
}

// KeyReport is one hot key copied out for rendering.
type KeyReport struct {
	Table, Column, Value string
	Count, MaxError      int64
}

// TopK is a space-saving top-k sketch over routed sharding-key values.
// It is mutex-guarded rather than striped: hot-key tracking is opt-in
// (SET VARIABLE hotkey_tracking), so the always-on path never touches
// it, and the monitored set must be global for the error bound to hold.
type TopK struct {
	mu    sync.Mutex
	items map[string]*keyItem
	k     int
}

// NewTopK builds a sketch monitoring up to k values (0 uses the
// default width).
func NewTopK(k int) *TopK {
	if k <= 0 {
		k = topKCapacity
	}
	return &TopK{items: make(map[string]*keyItem, k), k: k}
}

// Note records one observation of a sharding-key value.
func (t *TopK) Note(table, column, value string) {
	if t == nil {
		return
	}
	key := table + "\x00" + column + "\x00" + value
	t.mu.Lock()
	defer t.mu.Unlock()
	if it := t.items[key]; it != nil {
		it.Count++
		return
	}
	if len(t.items) < t.k {
		t.items[key] = &keyItem{Table: table, Column: column, Value: value, Count: 1}
		return
	}
	// Space-saving eviction: replace the minimum counter and inherit its
	// count, recording it as the new item's maximum overestimate.
	var min *keyItem
	var minKey string
	for k, it := range t.items {
		if min == nil || it.Count < min.Count {
			min, minKey = it, k
		}
	}
	delete(t.items, minKey)
	t.items[key] = &keyItem{
		Table: table, Column: column, Value: value,
		Count: min.Count + 1, MaxError: min.Count,
	}
}

// Top returns up to n monitored values ordered by estimated count.
func (t *TopK) Top(n int) []KeyReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]KeyReport, 0, len(t.items))
	for _, it := range t.items {
		out = append(out, KeyReport{
			Table: it.Table, Column: it.Column, Value: it.Value,
			Count: it.Count, MaxError: it.MaxError,
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Value < out[j].Value
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Reset drops all monitored values.
func (t *TopK) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.items = make(map[string]*keyItem, t.k)
	t.mu.Unlock()
}
