package digest

import (
	"sync/atomic"
	"time"

	"shardingsphere/internal/resource"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/telemetry"
)

// Workload bundles the three workload-observability structures the
// kernel owns: the statement digest registry, the shard heat map, and
// the opt-in hot-key sketch.
type Workload struct {
	Digests *Registry
	Heat    *Heat
	// hotKeys is nil while hot-key tracking is off, so the disabled
	// cost at the router is a single atomic pointer load.
	hotKeys atomic.Pointer[TopK]
}

// NewWorkload builds the bundle with a digest registry bounded to
// capacity shapes (0 uses DefaultCapacity). Hot-key tracking starts
// off.
func NewWorkload(capacity int) *Workload {
	return &Workload{Digests: NewRegistry(capacity), Heat: NewHeat()}
}

// SetHotKeyTracking switches the hot-key sketch on or off. Turning it
// off discards the sketch; turning it on starts fresh.
func (w *Workload) SetHotKeyTracking(on bool) {
	if w == nil {
		return
	}
	if on {
		w.hotKeys.Store(NewTopK(0))
	} else {
		w.hotKeys.Store(nil)
	}
}

// HotKeys returns the live sketch, or nil while tracking is off.
func (w *Workload) HotKeys() *TopK {
	if w == nil {
		return nil
	}
	return w.hotKeys.Load()
}

// Reset clears the whole plane (RESET DIGESTS).
func (w *Workload) Reset() {
	if w == nil {
		return
	}
	w.Digests.Reset()
	w.Heat.Reset()
	if t := w.hotKeys.Load(); t != nil {
		t.Reset()
	}
}

// DigestMetrics is the governor metrics source for the digest.* family.
func (w *Workload) DigestMetrics() map[string]int64 {
	calls, errs, rows, shapes, evictions := w.Digests.Totals()
	return map[string]int64{
		"calls":     calls,
		"errors":    errs,
		"rows":      rows,
		"shapes":    shapes,
		"evictions": evictions,
	}
}

// HeatMetrics is the governor metrics source for the heat.* family.
func (w *Workload) HeatMetrics() map[string]int64 {
	queries, execs, rowsRead, rowsWritten, bytes, errs, cells := w.Heat.Totals()
	return map[string]int64{
		"queries":      queries,
		"execs":        execs,
		"rows_read":    rowsRead,
		"rows_written": rowsWritten,
		"bytes":        bytes,
		"errors":       errs,
		"cells":        cells,
	}
}

// SnapshotInto appends the plane's counters to a metrics snapshot, so
// they ride the existing MetricsPull/MergeSnapshots federation and the
// cluster-wide digest call count is the exact node sum.
func (w *Workload) SnapshotInto(s *telemetry.MetricsSnapshot) {
	if w == nil || s == nil {
		return
	}
	for _, fam := range []struct {
		prefix string
		m      map[string]int64
	}{{"digest.", w.DigestMetrics()}, {"heat.", w.HeatMetrics()}} {
		for k, v := range fam.m {
			s.Counters = append(s.Counters, telemetry.NamedCounter{Name: fam.prefix + k, Value: v})
		}
	}
}

// RowSink receives streamed row counts; both digest entries and heat
// cells implement it. The interface lives in resource so ConnLease can
// charge sinks without importing this package.
type RowSink = resource.RowSink

// AddStreamedRows implements RowSink for a digest entry.
func (e *Entry) AddStreamedRows(rows int, bytes int64) { e.addRows(rows, bytes) }

// AddStreamedRows implements RowSink for a heat cell.
func (c *Cell) AddStreamedRows(rows int, bytes int64) { c.AddRead(rows, bytes) }

// WrapRows wraps a result cursor so rows (and approximate bytes)
// flowing through it are charged to sink. Typed nil sinks and nil
// cursors pass through untouched.
func WrapRows(rs resource.ResultSet, sink RowSink) resource.ResultSet {
	if rs == nil || sink == nil {
		return rs
	}
	switch s := sink.(type) {
	case *Entry:
		if s == nil {
			return rs
		}
	case *Cell:
		if s == nil {
			return rs
		}
	}
	return &countingRS{inner: rs, sink: sink}
}

type countingRS struct {
	inner resource.ResultSet
	sink  RowSink
}

func (c *countingRS) Columns() []string { return c.inner.Columns() }

func (c *countingRS) Next() (sqltypes.Row, error) {
	row, err := c.inner.Next()
	if err == nil {
		c.sink.AddStreamedRows(1, RowBytes(row))
	}
	return row, err
}

func (c *countingRS) NextBatch(buf []sqltypes.Row) (int, error) {
	n, err := c.inner.NextBatch(buf)
	if n > 0 {
		var b int64
		for i := 0; i < n; i++ {
			b += RowBytes(buf[i])
		}
		c.sink.AddStreamedRows(n, b)
	}
	return n, err
}

func (c *countingRS) Close() error { return c.inner.Close() }

// RowBytes approximates a row's wire size; the implementation lives in
// resource next to the lease that charges it.
func RowBytes(row sqltypes.Row) int64 { return resource.RowBytes(row) }

// Now is the clock the surfaces evaluate decayed rates against;
// indirected for tests.
var Now = time.Now
