// Package digest is the workload-observability plane (pg_stat_statements
// for the sharding kernel): a statement digest registry keyed by the plan
// cache's normalized statement shape, a per-(table, shard) heat map with
// exponentially-decayed rates, and an opt-in hot-key top-k sketch over
// routed sharding-key values. Telemetry (PR 2/5) answers "how slow was
// this statement"; this package answers "which statement shapes, tables,
// shards and key values carry the load" — the input signal the roadmap's
// online-resharding item needs.
//
// Everything here is built for an always-on hot path: entries and cells
// are resolved with one striped map probe and updated with plain atomic
// adds; the only locks are per-stripe RWMutexes taken in read mode on
// hits and in write mode only to insert a new shape or cell.
package digest

import (
	"sync"
	"sync/atomic"
	"time"

	"shardingsphere/internal/telemetry"
)

// DefaultCapacity bounds the digest registry: the table keeps at most
// this many statement shapes and evicts the least-recently-observed one
// beyond it, so a literal-storm of unique non-normalizable shapes cannot
// grow it without bound.
const DefaultCapacity = 4096

// stripeCount shards the registry lock; must be a power of two.
const stripeCount = 16

// Entry aggregates one statement shape. All fields are atomics: a hit
// updates the entry without any lock.
type Entry struct {
	// Key is the normalized statement shape (literals replaced by "?"),
	// identical to the plan cache's key for the same statement.
	Key string
	// ID is the shape's stable digest id (fnv-1a/64 of Key, hex).
	ID string

	calls   atomic.Int64
	errors  atomic.Int64
	retries atomic.Int64
	// rows counts rows returned to the client (queries, counted as the
	// merged result streams) plus rows affected (DML).
	rows  atomic.Int64
	bytes atomic.Int64
	// totalNs accumulates statement wall time so SHOW STATEMENT DIGESTS
	// can rank by total_time without walking histogram buckets.
	totalNs atomic.Int64
	lat     telemetry.Histogram

	// Shards-touched distribution. Only cross-shard statements pay the
	// extra atomics: the single-shard count is calls - crossShard, a
	// single shard contributes exactly 1 to the sum, and the single-shard
	// max is 1 — all derivable at snapshot time, so the dominant case
	// (routed point queries) skips three counters.
	crossShard     atomic.Int64
	crossShardsSum atomic.Int64
	crossShardsMax atomic.Int64

	// touch is the registry's LRU clock stamp; dead marks an entry that
	// was evicted while a cached plan still holds a pointer to it, so
	// the plan re-resolves instead of feeding an invisible entry.
	touch atomic.Int64
	dead  atomic.Bool
}

// Observe records one finished statement against the shape.
func (e *Entry) Observe(total time.Duration, shards, retries int, failed bool) {
	if e == nil {
		return
	}
	e.calls.Add(1)
	if failed {
		e.errors.Add(1)
	}
	if retries > 0 {
		e.retries.Add(int64(retries))
	}
	e.totalNs.Add(int64(total))
	e.lat.Observe(total)
	if shards <= 1 {
		return
	}
	e.crossShard.Add(1)
	e.crossShardsSum.Add(int64(shards))
	for {
		m := e.crossShardsMax.Load()
		if int64(shards) <= m || e.crossShardsMax.CompareAndSwap(m, int64(shards)) {
			return
		}
	}
}

// AddRows charges rows (and their approximate bytes) to the shape; the
// kernel calls it directly for DML affected counts and through WrapRows
// for streamed query results.
func (e *Entry) AddRows(n, bytes int64) {
	if e == nil || n == 0 {
		return
	}
	e.rows.Add(n)
	if bytes > 0 {
		e.bytes.Add(bytes)
	}
}

func (e *Entry) addRows(n int, bytes int64) { e.AddRows(int64(n), bytes) }

// EntrySnapshot is one shape's state copied out for rendering.
type EntrySnapshot struct {
	Key, ID                 string
	Calls, Errors, Retries  int64
	Rows, Bytes             int64
	Total                   time.Duration
	P50, P99                time.Duration
	SingleShard, CrossShard int64
	ShardsSum, ShardsMax    int64
}

func (e *Entry) snapshot() EntrySnapshot {
	calls := e.calls.Load()
	cross := e.crossShard.Load()
	single := calls - cross
	if single < 0 { // snapshot raced an in-flight Observe
		single = 0
	}
	maxShards := e.crossShardsMax.Load()
	if maxShards == 0 && calls > 0 {
		maxShards = 1
	}
	return EntrySnapshot{
		Key: e.Key, ID: e.ID,
		Calls:       calls,
		Errors:      e.errors.Load(),
		Retries:     e.retries.Load(),
		Rows:        e.rows.Load(),
		Bytes:       e.bytes.Load(),
		Total:       time.Duration(e.totalNs.Load()),
		P50:         e.lat.Quantile(0.50),
		P99:         e.lat.Quantile(0.99),
		SingleShard: single,
		CrossShard:  cross,
		ShardsSum:   single + e.crossShardsSum.Load(),
		ShardsMax:   maxShards,
	}
}

type stripe struct {
	mu sync.RWMutex
	m  map[string]*Entry
}

// Registry is the lock-striped, cardinality-bounded digest table.
type Registry struct {
	stripes   [stripeCount]stripe
	capacity  int // per-stripe bound
	clock     atomic.Int64
	epoch     atomic.Uint64
	evictions atomic.Int64
	shapes    atomic.Int64
}

// NewRegistry builds a registry bounded to capacity shapes (0 uses
// DefaultCapacity).
func NewRegistry(capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := capacity / stripeCount
	if per < 1 {
		per = 1
	}
	r := &Registry{capacity: per}
	for i := range r.stripes {
		r.stripes[i].m = map[string]*Entry{}
	}
	return r
}

// Epoch returns the reset epoch; cached plans holding entry pointers
// compare it to decide whether to re-resolve.
func (r *Registry) Epoch() uint64 { return r.epoch.Load() }

// Get returns the shape's entry, creating (and possibly evicting) under
// the stripe write lock on first sight. The hot path is one fnv hash and
// one read-locked map probe.
func (r *Registry) Get(key string) *Entry {
	if r == nil {
		return nil
	}
	st := &r.stripes[fnv64(key)&(stripeCount-1)]
	st.mu.RLock()
	e := st.m[key]
	st.mu.RUnlock()
	if e == nil {
		e = r.insert(st, key)
	}
	e.touch.Store(r.clock.Add(1))
	return e
}

// Touch refreshes an entry's LRU stamp; plans that cache entry pointers
// call it instead of re-probing. It reports false when the entry was
// evicted or reset, telling the caller to Get again. Unlike Get it does
// not advance the clock: the stamp is the clock's current value, which
// only moves when a new shape is resolved. Entries touched since the
// last resolution therefore tie — acceptable, because eviction order
// only matters under a storm of new shapes, exactly when the clock is
// advancing — and the steady-state cost is two atomic loads.
func (r *Registry) Touch(e *Entry) bool {
	if r == nil || e == nil || e.dead.Load() {
		return false
	}
	if c := r.clock.Load(); e.touch.Load() != c {
		e.touch.Store(c)
	}
	return true
}

func (r *Registry) insert(st *stripe, key string) *Entry {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e := st.m[key]; e != nil {
		return e
	}
	if len(st.m) >= r.capacity {
		// Evict the least-recently-observed shape in this stripe. The
		// O(stripe) scan runs only when a brand-new shape arrives with
		// the stripe full — never on a hit.
		var victim *Entry
		var vkey string
		for k, e := range st.m {
			if victim == nil || e.touch.Load() < victim.touch.Load() {
				victim, vkey = e, k
			}
		}
		if victim != nil {
			victim.dead.Store(true)
			delete(st.m, vkey)
			r.evictions.Add(1)
			r.shapes.Add(-1)
		}
	}
	e := &Entry{Key: key, ID: DigestID(key)}
	st.m[key] = e
	r.shapes.Add(1)
	return e
}

// Reset drops every shape and bumps the epoch so cached entry pointers
// re-resolve (RESET DIGESTS).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.epoch.Add(1)
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for _, e := range st.m {
			e.dead.Store(true)
		}
		st.m = map[string]*Entry{}
		st.mu.Unlock()
	}
	r.shapes.Store(0)
}

// Snapshot copies every live shape out for rendering.
func (r *Registry) Snapshot() []EntrySnapshot {
	if r == nil {
		return nil
	}
	var out []EntrySnapshot
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.RLock()
		for _, e := range st.m {
			out = append(out, e.snapshot())
		}
		st.mu.RUnlock()
	}
	return out
}

// Totals sums the registry's aggregate counters (the digest.* metrics
// family and the federated snapshot both render them).
func (r *Registry) Totals() (calls, errors, rows, shapes, evictions int64) {
	if r == nil {
		return
	}
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.RLock()
		for _, e := range st.m {
			calls += e.calls.Load()
			errors += e.errors.Load()
			rows += e.rows.Load()
		}
		st.mu.RUnlock()
	}
	return calls, errors, rows, r.shapes.Load(), r.evictions.Load()
}

// DigestID is the stable statement digest id of a normalized shape;
// it delegates to telemetry so slow-log entries and digest rows derive
// identical ids (telemetry cannot import this package).
func DigestID(key string) string { return telemetry.DigestID(key) }

func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
