package digest

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"shardingsphere/internal/telemetry"
)

// rateTau is the EWMA time constant: a shard that stops receiving
// traffic loses ~63% of its decayed rate every 30s, so SHOW SHARD HEAT
// ranks *currently* hot shards rather than lifetime totals.
const rateTau = 30.0

// maxCells bounds the heat map. Cardinality is naturally bounded by the
// topology (logic tables × shards), so the cap is a safety net against
// pathological rule churn, not an LRU: beyond it new cells are dropped
// and counted.
const maxCells = 4096

// Cell aggregates one (logic table, shard) pair, where a shard is the
// (data source, actual table) the router resolved to. Updates are plain
// atomics; the latency histogram is fed only for stage-sampled
// statements (the executor deliberately skips the clock for unsampled
// ones) and is labelled a sampled statistic in the surfaces.
type Cell struct {
	LogicTable  string
	DataSource  string
	ActualTable string

	queries     atomic.Int64
	execs       atomic.Int64
	rowsRead    atomic.Int64
	rowsWritten atomic.Int64
	bytes       atomic.Int64
	errors      atomic.Int64
	lat         telemetry.Histogram

	// EWMA state: winStart is the unix second of the open 1s counting
	// window, winCount the statements observed in it, rate the decayed
	// per-second rate (Float64bits). Rollover is CAS-elected so exactly
	// one observer folds the closed window in; the losers just count
	// into the new window. No extra clock read — callers pass the start
	// timestamp the executor already took.
	winStart atomic.Int64
	winCount atomic.Int64
	rate     atomic.Uint64
}

func (c *Cell) tick(start time.Time) {
	s := start.Unix()
	w := c.winStart.Load()
	if s == w {
		c.winCount.Add(1)
		return
	}
	if s < w || !c.winStart.CompareAndSwap(w, s) {
		// Raced with another roller (or a late sample from the prior
		// window): count into whatever window is open.
		c.winCount.Add(1)
		return
	}
	n := c.winCount.Swap(1) // the swap seeds the new window with this event
	if w == 0 {
		return // first event ever: nothing to fold yet
	}
	dt := float64(s - w)
	decay := math.Exp(-dt / rateTau)
	old := math.Float64frombits(c.rate.Load())
	c.rate.Store(math.Float64bits(old*decay + (float64(n)/dt)*(1-decay)))
}

// ObserveQuery records one routed read against the cell. dur is zero
// for unsampled statements and then skips the histogram.
func (c *Cell) ObserveQuery(start time.Time, dur time.Duration, err error) {
	if c == nil {
		return
	}
	c.queries.Add(1)
	if err != nil {
		c.errors.Add(1)
	}
	if dur > 0 {
		c.lat.Observe(dur)
	}
	c.tick(start)
}

// ObserveExec records one routed write plus its affected-row count.
func (c *Cell) ObserveExec(start time.Time, dur time.Duration, affected int64, err error) {
	if c == nil {
		return
	}
	c.execs.Add(1)
	if err != nil {
		c.errors.Add(1)
	}
	if affected > 0 {
		c.rowsWritten.Add(affected)
	}
	if dur > 0 {
		c.lat.Observe(dur)
	}
	c.tick(start)
}

// AddRead charges streamed result rows (and approximate bytes) to the
// cell; WrapRows calls it as batches flow to the merger.
func (c *Cell) AddRead(rows int, bytes int64) {
	if c == nil || rows == 0 {
		return
	}
	c.rowsRead.Add(int64(rows))
	if bytes > 0 {
		c.bytes.Add(bytes)
	}
}

// RateAt reports the decayed per-second statement rate as of now: the
// folded EWMA decayed to now plus the still-open window's count (so a
// shard that just went hot ranks immediately).
func (c *Cell) RateAt(now time.Time) float64 {
	w := c.winStart.Load()
	if w == 0 {
		return 0
	}
	dt := float64(now.Unix() - w)
	if dt < 0 {
		dt = 0
	}
	r := math.Float64frombits(c.rate.Load()) * math.Exp(-dt/rateTau)
	if dt < rateTau {
		r += float64(c.winCount.Load()) * (1 - dt/rateTau) // open window, linearly faded
	}
	return r
}

// CellSnapshot is one heat cell copied out for rendering.
type CellSnapshot struct {
	LogicTable, DataSource, ActualTable string
	Queries, Execs                      int64
	RowsRead, RowsWritten               int64
	Bytes, Errors                       int64
	Rate                                float64
	P50, P99                            time.Duration
}

// cellKey identifies one (logic table, shard) pair. A comparable struct
// rather than a concatenated string: the hot path builds it on the stack,
// so resolving a cell allocates nothing.
type cellKey struct {
	logic, ds, actual string
}

type heatStripe struct {
	mu sync.RWMutex
	m  map[cellKey]*Cell
}

// Heat is the lock-striped (table, shard) heat map.
type Heat struct {
	stripes [stripeCount]heatStripe
	cells   atomic.Int64
	dropped atomic.Int64
	// epoch bumps on Reset so executors holding cached cell pointers
	// re-resolve instead of charging cells the map no longer reports.
	epoch atomic.Uint64
}

// Epoch returns the reset epoch; cached cell pointers compare it to
// decide whether to re-resolve.
func (h *Heat) Epoch() uint64 {
	if h == nil {
		return 0
	}
	return h.epoch.Load()
}

// NewHeat builds an empty heat map.
func NewHeat() *Heat {
	h := &Heat{}
	for i := range h.stripes {
		h.stripes[i].m = map[cellKey]*Cell{}
	}
	return h
}

// Cell resolves (and lazily creates) the cell for one routed unit. Hot
// path: one key build and one read-locked probe. Returns nil when the
// map is at capacity and the pair is new.
func (h *Heat) Cell(logic, ds, actual string) *Cell {
	if h == nil {
		return nil
	}
	key := cellKey{logic: logic, ds: ds, actual: actual}
	st := &h.stripes[fnv64(actual)&(stripeCount-1)]
	st.mu.RLock()
	c := st.m[key]
	st.mu.RUnlock()
	if c != nil {
		return c
	}
	if h.cells.Load() >= maxCells {
		h.dropped.Add(1)
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if c = st.m[key]; c != nil {
		return c
	}
	c = &Cell{LogicTable: logic, DataSource: ds, ActualTable: actual}
	st.m[key] = c
	h.cells.Add(1)
	return c
}

// Reset drops every cell (RESET DIGESTS clears the whole workload plane).
func (h *Heat) Reset() {
	if h == nil {
		return
	}
	h.epoch.Add(1)
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		st.m = map[cellKey]*Cell{}
		st.mu.Unlock()
	}
	h.cells.Store(0)
}

// Snapshot copies every cell out, with rates evaluated at now.
func (h *Heat) Snapshot(now time.Time) []CellSnapshot {
	if h == nil {
		return nil
	}
	var out []CellSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.RLock()
		for _, c := range st.m {
			out = append(out, CellSnapshot{
				LogicTable:  c.LogicTable,
				DataSource:  c.DataSource,
				ActualTable: c.ActualTable,
				Queries:     c.queries.Load(),
				Execs:       c.execs.Load(),
				RowsRead:    c.rowsRead.Load(),
				RowsWritten: c.rowsWritten.Load(),
				Bytes:       c.bytes.Load(),
				Errors:      c.errors.Load(),
				Rate:        c.RateAt(now),
				P50:         c.lat.Quantile(0.50),
				P99:         c.lat.Quantile(0.99),
			})
		}
		st.mu.RUnlock()
	}
	return out
}

// Totals sums the map's aggregate counters for the heat.* metric family.
func (h *Heat) Totals() (queries, execs, rowsRead, rowsWritten, bytes, errors, cells int64) {
	if h == nil {
		return
	}
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.RLock()
		for _, c := range st.m {
			queries += c.queries.Load()
			execs += c.execs.Load()
			rowsRead += c.rowsRead.Load()
			rowsWritten += c.rowsWritten.Load()
			bytes += c.bytes.Load()
			errors += c.errors.Load()
		}
		st.mu.RUnlock()
	}
	return queries, execs, rowsRead, rowsWritten, bytes, errors, h.cells.Load()
}
