package sqlparser

// WalkExpr visits e and every sub-expression in depth-first order. The
// visit function may return false to prune the subtree.
func WalkExpr(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch t := e.(type) {
	case *BinaryExpr:
		WalkExpr(t.L, visit)
		WalkExpr(t.R, visit)
	case *UnaryExpr:
		WalkExpr(t.E, visit)
	case *InExpr:
		WalkExpr(t.E, visit)
		for _, x := range t.List {
			WalkExpr(x, visit)
		}
	case *BetweenExpr:
		WalkExpr(t.E, visit)
		WalkExpr(t.Lo, visit)
		WalkExpr(t.Hi, visit)
	case *LikeExpr:
		WalkExpr(t.E, visit)
		WalkExpr(t.Pattern, visit)
	case *IsNullExpr:
		WalkExpr(t.E, visit)
	case *FuncExpr:
		for _, a := range t.Args {
			WalkExpr(a, visit)
		}
	case *CaseExpr:
		WalkExpr(t.Operand, visit)
		for _, w := range t.Whens {
			WalkExpr(w.When, visit)
			WalkExpr(w.Then, visit)
		}
		WalkExpr(t.Else, visit)
	}
}

// CloneExpr returns a deep copy of the expression.
func CloneExpr(e Expr) Expr {
	switch t := e.(type) {
	case nil:
		return nil
	case *Literal:
		c := *t
		return &c
	case *Placeholder:
		c := *t
		return &c
	case *ColumnRef:
		c := *t
		return &c
	case *BinaryExpr:
		return &BinaryExpr{Op: t.Op, L: CloneExpr(t.L), R: CloneExpr(t.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: t.Op, E: CloneExpr(t.E)}
	case *InExpr:
		list := make([]Expr, len(t.List))
		for i, x := range t.List {
			list[i] = CloneExpr(x)
		}
		return &InExpr{E: CloneExpr(t.E), List: list, Not: t.Not}
	case *BetweenExpr:
		return &BetweenExpr{E: CloneExpr(t.E), Lo: CloneExpr(t.Lo), Hi: CloneExpr(t.Hi), Not: t.Not}
	case *LikeExpr:
		return &LikeExpr{E: CloneExpr(t.E), Pattern: CloneExpr(t.Pattern), Not: t.Not}
	case *IsNullExpr:
		return &IsNullExpr{E: CloneExpr(t.E), Not: t.Not}
	case *FuncExpr:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = CloneExpr(a)
		}
		return &FuncExpr{Name: t.Name, Args: args, Star: t.Star, Distinct: t.Distinct}
	case *CaseExpr:
		whens := make([]WhenClause, len(t.Whens))
		for i, w := range t.Whens {
			whens[i] = WhenClause{When: CloneExpr(w.When), Then: CloneExpr(w.Then)}
		}
		return &CaseExpr{Operand: CloneExpr(t.Operand), Whens: whens, Else: CloneExpr(t.Else)}
	default:
		return e
	}
}

// CloneStatement deep-copies a statement so the rewriter can mutate one
// copy per route unit without disturbing the parsed original (which the
// kernel caches per logical SQL).
func CloneStatement(stmt Statement) Statement {
	switch t := stmt.(type) {
	case *SelectStmt:
		c := &SelectStmt{
			Distinct:  t.Distinct,
			ForUpdate: t.ForUpdate,
		}
		c.Items = make([]SelectItem, len(t.Items))
		for i, item := range t.Items {
			c.Items[i] = SelectItem{
				Expr:      CloneExpr(item.Expr),
				Alias:     item.Alias,
				Star:      item.Star,
				StarTable: item.StarTable,
				Derived:   item.Derived,
			}
		}
		c.From = make([]TableRef, len(t.From))
		for i, ref := range t.From {
			c.From[i] = TableRef{Name: ref.Name, Alias: ref.Alias, Join: ref.Join, On: CloneExpr(ref.On)}
		}
		c.Where = CloneExpr(t.Where)
		if len(t.GroupBy) > 0 {
			c.GroupBy = make([]Expr, len(t.GroupBy))
			for i, e := range t.GroupBy {
				c.GroupBy[i] = CloneExpr(e)
			}
		}
		c.Having = CloneExpr(t.Having)
		if len(t.OrderBy) > 0 {
			c.OrderBy = make([]OrderItem, len(t.OrderBy))
			for i, o := range t.OrderBy {
				c.OrderBy[i] = OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc}
			}
		}
		if t.Limit != nil {
			c.Limit = &Limit{Offset: CloneExpr(t.Limit.Offset), Count: CloneExpr(t.Limit.Count)}
		}
		return c
	case *InsertStmt:
		c := &InsertStmt{Table: t.Table}
		c.Columns = append([]string(nil), t.Columns...)
		c.Rows = make([][]Expr, len(t.Rows))
		for i, row := range t.Rows {
			r := make([]Expr, len(row))
			for j, e := range row {
				r[j] = CloneExpr(e)
			}
			c.Rows[i] = r
		}
		return c
	case *UpdateStmt:
		c := &UpdateStmt{Table: t.Table, Alias: t.Alias, Where: CloneExpr(t.Where)}
		c.Set = make([]Assignment, len(t.Set))
		for i, a := range t.Set {
			c.Set[i] = Assignment{Column: a.Column, Value: CloneExpr(a.Value)}
		}
		return c
	case *DeleteStmt:
		return &DeleteStmt{Table: t.Table, Alias: t.Alias, Where: CloneExpr(t.Where)}
	case *CreateTableStmt:
		c := &CreateTableStmt{Table: t.Table, IfNotExists: t.IfNotExists}
		c.Columns = append([]ColumnDef(nil), t.Columns...)
		c.PrimaryKey = append([]string(nil), t.PrimaryKey...)
		return c
	case *DropTableStmt:
		c := *t
		return &c
	case *TruncateStmt:
		c := *t
		return &c
	case *CreateIndexStmt:
		c := &CreateIndexStmt{Name: t.Name, Table: t.Table}
		c.Columns = append([]string(nil), t.Columns...)
		return c
	case *BeginStmt:
		return &BeginStmt{}
	case *CommitStmt:
		return &CommitStmt{}
	case *RollbackStmt:
		return &RollbackStmt{}
	case *XAStmt:
		c := *t
		return &c
	case *ShowStmt:
		c := *t
		return &c
	case *SetStmt:
		c := *t
		return &c
	default:
		return stmt
	}
}

// TableNames returns every table referenced by the statement, in order of
// appearance. The router uses this to pick a route strategy.
func TableNames(stmt Statement) []string {
	switch t := stmt.(type) {
	case *SelectStmt:
		names := make([]string, 0, len(t.From))
		for _, ref := range t.From {
			names = append(names, ref.Name)
		}
		return names
	case *InsertStmt:
		return []string{t.Table}
	case *UpdateStmt:
		return []string{t.Table}
	case *DeleteStmt:
		return []string{t.Table}
	case *CreateTableStmt:
		return []string{t.Table}
	case *DropTableStmt:
		return []string{t.Table}
	case *TruncateStmt:
		return []string{t.Table}
	case *CreateIndexStmt:
		return []string{t.Table}
	default:
		return nil
	}
}

// RenameTables applies a logical→actual table-name mapping to every table
// reference in the statement, including column qualifiers that use the
// table name directly (rather than an alias). This is the identifier
// rewrite of paper Section VI-C.
func RenameTables(stmt Statement, mapping map[string]string) {
	rename := func(name string) string {
		if actual, ok := mapping[name]; ok {
			return actual
		}
		return name
	}
	renameQualifiers := func(e Expr) {
		WalkExpr(e, func(x Expr) bool {
			if c, ok := x.(*ColumnRef); ok && c.Table != "" {
				c.Table = rename(c.Table)
			}
			return true
		})
	}
	switch t := stmt.(type) {
	case *SelectStmt:
		for i := range t.From {
			t.From[i].Name = rename(t.From[i].Name)
			renameQualifiers(t.From[i].On)
		}
		for i := range t.Items {
			if t.Items[i].StarTable != "" {
				t.Items[i].StarTable = rename(t.Items[i].StarTable)
			}
			renameQualifiers(t.Items[i].Expr)
		}
		renameQualifiers(t.Where)
		for _, e := range t.GroupBy {
			renameQualifiers(e)
		}
		renameQualifiers(t.Having)
		for _, o := range t.OrderBy {
			renameQualifiers(o.Expr)
		}
	case *InsertStmt:
		t.Table = rename(t.Table)
	case *UpdateStmt:
		t.Table = rename(t.Table)
		renameQualifiers(t.Where)
		for _, a := range t.Set {
			renameQualifiers(a.Value)
		}
	case *DeleteStmt:
		t.Table = rename(t.Table)
		renameQualifiers(t.Where)
	case *CreateTableStmt:
		t.Table = rename(t.Table)
	case *DropTableStmt:
		t.Table = rename(t.Table)
	case *TruncateStmt:
		t.Table = rename(t.Table)
	case *CreateIndexStmt:
		t.Table = rename(t.Table)
	}
}
