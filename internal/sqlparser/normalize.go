package sqlparser

import (
	"strconv"
	"strings"

	"shardingsphere/internal/sqltypes"
)

// Normalized is the shape-level canonical form of a DML statement: every
// literal is replaced by a parameter slot, so statements that differ only
// in literal values share one Key. The kernel's plan cache keys on it
// (paper Sections VI-A..VI-C run once per shape instead of once per
// statement).
type Normalized struct {
	// Key is the canonical SQL with every literal rewritten to "?".
	// Placeholders are numbered left to right, matching the parser's
	// Placeholder.Index assignment, so parsing Key yields an AST whose
	// parameter slots line up with Args.
	Key string
	// Args holds one slot per "?" in Key, in order.
	Args []ArgSlot
	// ForUpdate reports a trailing FOR UPDATE clause (locking reads inside
	// XA transactions must bypass the plan cache).
	ForUpdate bool
}

// ArgSlot is one parameter slot of a normalized statement: either a
// literal captured from the original text or a reference to one of the
// caller's bind arguments.
type ArgSlot struct {
	// Arg is the index into the caller's bind arguments, or -1 when the
	// slot was a literal in the original text.
	Arg int
	// Lit is the captured literal value (valid when Arg < 0).
	Lit sqltypes.Value
}

// BindArgs materializes the positional argument list for the normalized
// statement: captured literals fill their own slots, the caller's bind
// arguments fill the rest.
func (n *Normalized) BindArgs(args []sqltypes.Value) ([]sqltypes.Value, error) {
	out := make([]sqltypes.Value, len(n.Args))
	for i, slot := range n.Args {
		if slot.Arg < 0 {
			out[i] = slot.Lit
			continue
		}
		if slot.Arg >= len(args) {
			return nil, &ParseError{Pos: 0, Msg: sprintf("missing bind argument %d", slot.Arg+1), SQL: n.Key}
		}
		out[i] = args[slot.Arg]
	}
	return out, nil
}

// normalizable holds the statement classes the plan cache serves. DDL,
// TCL, XA, SET, SHOW and DESCRIBE bypass normalization entirely: they are
// rare, their literals are structural (VARCHAR(64) is part of the shape),
// and caching them would only dilute the cache.
var normalizable = map[string]bool{
	"SELECT": true, "INSERT": true, "UPDATE": true, "DELETE": true,
}

// Normalize canonicalizes one DML statement without parsing it: a single
// lexer pass rewrites literals to ordered parameter slots and emits the
// cache key. It reports ok=false for statements that must bypass the plan
// cache (DDL, TCL, management commands, unlexable input); the caller falls
// back to a full Parse.
func Normalize(sql string) (*Normalized, bool) {
	l := &lexer{src: sql}
	first, err := l.next()
	if err != nil || first.Type != TokenKeyword || !normalizable[first.Val] {
		return nil, false
	}
	var b strings.Builder
	b.Grow(len(sql))
	b.WriteString(first.Val)
	n := &Normalized{}
	nArg := 0
	prevKeyword := first.Val
	for {
		t, err := l.next()
		if err != nil {
			return nil, false
		}
		if t.Type == TokenEOF {
			break
		}
		switch t.Type {
		case TokenInt:
			v, err := strconv.ParseInt(t.Val, 10, 64)
			if err != nil {
				return nil, false
			}
			n.Args = append(n.Args, ArgSlot{Arg: -1, Lit: sqltypes.NewInt(v)})
			b.WriteString(" ?")
		case TokenFloat:
			v, err := strconv.ParseFloat(t.Val, 64)
			if err != nil {
				return nil, false
			}
			n.Args = append(n.Args, ArgSlot{Arg: -1, Lit: sqltypes.NewFloat(v)})
			b.WriteString(" ?")
		case TokenString:
			n.Args = append(n.Args, ArgSlot{Arg: -1, Lit: sqltypes.NewString(t.Val)})
			b.WriteString(" ?")
		case TokenPlaceholder:
			n.Args = append(n.Args, ArgSlot{Arg: nArg})
			nArg++
			b.WriteString(" ?")
		case TokenKeyword:
			if t.Val == "UPDATE" && prevKeyword == "FOR" {
				n.ForUpdate = true
			}
			prevKeyword = t.Val
			b.WriteByte(' ')
			b.WriteString(t.Val)
		case TokenIdent:
			// Re-quote identifiers that need it (quoted idents lex to their
			// inner text) so the key re-parses to the same AST.
			b.WriteByte(' ')
			if needsQuote(t.Val) {
				b.WriteByte('`')
				b.WriteString(strings.ReplaceAll(t.Val, "`", "``"))
				b.WriteByte('`')
			} else {
				b.WriteString(t.Val)
			}
		default: // TokenOp
			b.WriteByte(' ')
			b.WriteString(t.Val)
		}
		if t.Type != TokenKeyword {
			prevKeyword = ""
		}
	}
	n.Key = b.String()
	return n, true
}
