package sqlparser

import (
	"shardingsphere/internal/sqltypes"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmtNode()
	// StatementType returns the coarse class used by the router to decide
	// between sharding route and broadcast route (paper Section VI-B).
	StatementType() StatementType
}

// StatementType is the coarse classification of a statement.
type StatementType uint8

// Statement classes. DQL/DML participate in sharding route; DDL and TCL
// are broadcast (paper Section VI-B).
const (
	StmtSelect StatementType = iota
	StmtInsert
	StmtUpdate
	StmtDelete
	StmtDDL
	StmtTCL
	StmtXA
	StmtShow
	StmtSet
)

func (t StatementType) String() string {
	switch t {
	case StmtSelect:
		return "SELECT"
	case StmtInsert:
		return "INSERT"
	case StmtUpdate:
		return "UPDATE"
	case StmtDelete:
		return "DELETE"
	case StmtDDL:
		return "DDL"
	case StmtTCL:
		return "TCL"
	case StmtXA:
		return "XA"
	case StmtShow:
		return "SHOW"
	case StmtSet:
		return "SET"
	default:
		return "UNKNOWN"
	}
}

// IsDML reports whether the statement class writes table data.
func (t StatementType) IsDML() bool {
	return t == StmtInsert || t == StmtUpdate || t == StmtDelete
}

// --- Expressions ---

// Expr is any SQL expression node.
type Expr interface{ exprNode() }

// ColumnRef names a column, optionally qualified by a table name or alias.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

// Literal is a constant value.
type Literal struct {
	Val sqltypes.Value
}

// Placeholder is a `?` parameter, numbered left to right from 0.
type Placeholder struct {
	Index int
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpEQ BinOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
)

func (o BinOp) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpConcat:
		return "||"
	default:
		return "?op?"
	}
}

// BinaryExpr is L op R.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
}

// UnaryOp enumerates unary operators.
type UnaryOp uint8

// Unary operators.
const (
	OpNot UnaryOp = iota
	OpNeg
)

// UnaryExpr is op E.
type UnaryExpr struct {
	Op UnaryOp
	E  Expr
}

// InExpr is E [NOT] IN (list...).
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// BetweenExpr is E [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

// LikeExpr is E [NOT] LIKE Pattern ('%' and '_' wildcards).
type LikeExpr struct {
	E, Pattern Expr
	Not        bool
}

// IsNullExpr is E IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

// FuncExpr is a function call; aggregates set Star/Distinct as needed
// (COUNT(*), COUNT(DISTINCT x)).
type FuncExpr struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

// IsAggregate reports whether this call is an aggregate function.
func (f *FuncExpr) IsAggregate() bool { return IsAggregateFunc(f.Name) }

// CaseExpr is CASE [Operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

// WhenClause is one WHEN/THEN arm of a CASE expression.
type WhenClause struct {
	When Expr
	Then Expr
}

func (*ColumnRef) exprNode()   {}
func (*Literal) exprNode()     {}
func (*Placeholder) exprNode() {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*InExpr) exprNode()      {}
func (*BetweenExpr) exprNode() {}
func (*LikeExpr) exprNode()    {}
func (*IsNullExpr) exprNode()  {}
func (*FuncExpr) exprNode()    {}
func (*CaseExpr) exprNode()    {}

// --- SELECT ---

// SelectItem is one projection item. Star items are "*" or "t.*".
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string // qualifier of "t.*", empty for bare "*"
	// Derived marks columns injected by the rewriter (paper Section VI-C,
	// "derive columns"); the merger strips them before returning rows.
	Derived bool
}

// JoinType enumerates join kinds. Only inner/cross joins affect routing;
// outer joins are executed per-node and merged.
type JoinType uint8

// Join kinds.
const (
	JoinNone JoinType = iota // first table in FROM
	JoinInner
	JoinLeft
	JoinRight
	JoinCross
)

func (j JoinType) String() string {
	switch j {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return ""
	}
}

// TableRef is one table in the FROM clause, with its join to the previous
// table. FROM lists are kept linear (a, b, c) rather than as a tree; comma
// joins parse as JoinCross with nil On.
type TableRef struct {
	Name  string
	Alias string
	Join  JoinType
	On    Expr // nil for JoinNone / comma joins
}

// RefName returns the name queries use to qualify columns of this table.
func (t *TableRef) RefName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY expression.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Limit is the pagination clause. Offset may be nil. Values are expressions
// so placeholders work, but must evaluate to non-negative integers.
type Limit struct {
	Offset Expr // nil when absent
	Count  Expr
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct  bool
	Items     []SelectItem
	From      []TableRef
	Where     Expr
	GroupBy   []Expr
	Having    Expr
	OrderBy   []OrderItem
	Limit     *Limit
	ForUpdate bool
}

func (*SelectStmt) stmtNode()                    {}
func (*SelectStmt) StatementType() StatementType { return StmtSelect }

// AggregateItems returns the indexes of projection items whose expression
// is a bare aggregate call; the merger uses this to combine partial
// aggregates (paper Section VI-E).
func (s *SelectStmt) AggregateItems() []int {
	var out []int
	for i, item := range s.Items {
		if f, ok := item.Expr.(*FuncExpr); ok && f.IsAggregate() {
			out = append(out, i)
		}
	}
	return out
}

// HasAggregates reports whether any projection item aggregates.
func (s *SelectStmt) HasAggregates() bool { return len(s.AggregateItems()) > 0 }

// --- INSERT / UPDATE / DELETE ---

// Assignment is "col = expr" in UPDATE SET clauses.
type Assignment struct {
	Column string
	Value  Expr
}

// InsertStmt is a (possibly multi-row) INSERT.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*InsertStmt) stmtNode()                    {}
func (*InsertStmt) StatementType() StatementType { return StmtInsert }

// UpdateStmt is an UPDATE.
type UpdateStmt struct {
	Table string
	Alias string
	Set   []Assignment
	Where Expr
}

func (*UpdateStmt) stmtNode()                    {}
func (*UpdateStmt) StatementType() StatementType { return StmtUpdate }

// DeleteStmt is a DELETE.
type DeleteStmt struct {
	Table string
	Alias string
	Where Expr
}

func (*DeleteStmt) stmtNode()                    {}
func (*DeleteStmt) StatementType() StatementType { return StmtDelete }

// --- DDL ---

// ColumnDef is one column definition in CREATE TABLE.
type ColumnDef struct {
	Name          string
	Type          sqltypes.Kind
	TypeName      string // original type word, e.g. VARCHAR
	Size          int    // VARCHAR(n)/CHAR(n), 0 when absent
	PrimaryKey    bool
	NotNull       bool
	AutoIncrement bool
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
	PrimaryKey  []string // table-level PRIMARY KEY (...), empty if per-column
}

func (*CreateTableStmt) stmtNode()                    {}
func (*CreateTableStmt) StatementType() StatementType { return StmtDDL }

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

func (*DropTableStmt) stmtNode()                    {}
func (*DropTableStmt) StatementType() StatementType { return StmtDDL }

// TruncateStmt is TRUNCATE TABLE.
type TruncateStmt struct {
	Table string
}

func (*TruncateStmt) stmtNode()                    {}
func (*TruncateStmt) StatementType() StatementType { return StmtDDL }

// CreateIndexStmt is CREATE INDEX name ON table (cols).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
}

func (*CreateIndexStmt) stmtNode()                    {}
func (*CreateIndexStmt) StatementType() StatementType { return StmtDDL }

// --- TCL ---

// BeginStmt is BEGIN / START TRANSACTION.
type BeginStmt struct{}

// CommitStmt is COMMIT.
type CommitStmt struct{}

// RollbackStmt is ROLLBACK.
type RollbackStmt struct{}

func (*BeginStmt) stmtNode()                    {}
func (*BeginStmt) StatementType() StatementType { return StmtTCL }

func (*CommitStmt) stmtNode()                    {}
func (*CommitStmt) StatementType() StatementType { return StmtTCL }

func (*RollbackStmt) stmtNode()                    {}
func (*RollbackStmt) StatementType() StatementType { return StmtTCL }

// XAOp enumerates XA verbs sent to data nodes during 2PC.
type XAOp uint8

// XA verbs (a pragmatic subset of the X/Open XA command set).
const (
	XABegin XAOp = iota
	XAEnd
	XAPrepare
	XACommit
	XARollback
	XARecover
	// XAAdopt binds a session's active plain transaction to an XID so it
	// can be prepared — the lazy single-shard→XA upgrade verb (not part
	// of X/Open; a ShardingSphere-dialect extension).
	XAAdopt
)

func (o XAOp) String() string {
	switch o {
	case XABegin:
		return "XA BEGIN"
	case XAEnd:
		return "XA END"
	case XAPrepare:
		return "XA PREPARE"
	case XACommit:
		return "XA COMMIT"
	case XARollback:
		return "XA ROLLBACK"
	case XARecover:
		return "XA RECOVER"
	case XAAdopt:
		return "XA ADOPT"
	default:
		return "XA ?"
	}
}

// XAStmt is an XA transaction-control statement, e.g. XA PREPARE 'xid'.
type XAStmt struct {
	Op  XAOp
	XID string
}

func (*XAStmt) stmtNode()                    {}
func (*XAStmt) StatementType() StatementType { return StmtXA }

// ShowStmt is SHOW TABLES (the only SHOW the data nodes serve; DistSQL has
// its own richer SHOW family).
type ShowStmt struct {
	What string
}

func (*ShowStmt) stmtNode()                    {}
func (*ShowStmt) StatementType() StatementType { return StmtShow }

// DescribeStmt is DESCRIBE <table>: it returns one row per column with
// (name, type, pk). The distributed transaction manager uses it to learn
// primary keys for BASE-mode compensation SQL.
type DescribeStmt struct {
	Table string
}

func (*DescribeStmt) stmtNode()                    {}
func (*DescribeStmt) StatementType() StatementType { return StmtShow }

// SetStmt is SET name = value; used for session variables such as the
// transaction type (paper Section V-A, RAL).
type SetStmt struct {
	Name  string
	Value sqltypes.Value
}

func (*SetStmt) stmtNode()                    {}
func (*SetStmt) StatementType() StatementType { return StmtSet }
