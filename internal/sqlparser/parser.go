package sqlparser

import (
	"strconv"
	"sync/atomic"

	"shardingsphere/internal/sqltypes"
)

// Dialect selects identifier quoting and pagination syntax when the
// serializer renders statements back to text (paper Section VI-A's dialect
// dictionaries). Parsing is dialect-tolerant: either quoting style and both
// LIMIT syntaxes are always accepted.
type Dialect uint8

// Supported dialects.
const (
	DialectMySQL Dialect = iota
	DialectPostgreSQL
)

func (d Dialect) String() string {
	if d == DialectPostgreSQL {
		return "PostgreSQL"
	}
	return "MySQL"
}

// parseCount counts Parse invocations; the plan cache's tests assert hot
// paths never re-parse (see ParseCount).
var parseCount atomic.Uint64

// ParseCount returns the number of Parse calls made so far; a test hook
// for asserting that cached plans skip the parser entirely.
func ParseCount() uint64 { return parseCount.Load() }

// Parse parses one SQL statement.
func Parse(sql string) (Statement, error) {
	parseCount.Add(1)
	p := &parser{lex: lexer{src: sql}, sql: sql}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.tok.Type == TokenOp && p.tok.Val == ";" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.Type != TokenEOF {
		return nil, p.errf("unexpected trailing input %q", p.tok.String())
	}
	return stmt, nil
}

type parser struct {
	lex  lexer
	sql  string
	tok  Token
	nArg int // placeholder counter
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.tok.Pos, Msg: sprintf(format, args...), SQL: p.sql}
}

// sprintf avoids importing fmt in several files; trivial wrapper.
func sprintf(format string, args ...any) string {
	if len(args) == 0 {
		return format
	}
	return fmtSprintf(format, args...)
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// isKeyword reports whether the current token is the given keyword.
func (p *parser) isKeyword(kw string) bool {
	return p.tok.Type == TokenKeyword && p.tok.Val == kw
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) (bool, error) {
	if p.isKeyword(kw) {
		return true, p.advance()
	}
	return false, nil
}

// expectKeyword consumes the keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.tok.String())
	}
	return p.advance()
}

func (p *parser) isOp(op string) bool {
	return p.tok.Type == TokenOp && p.tok.Val == op
}

func (p *parser) acceptOp(op string) (bool, error) {
	if p.isOp(op) {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) expectOp(op string) error {
	if !p.isOp(op) {
		return p.errf("expected %q, got %q", op, p.tok.String())
	}
	return p.advance()
}

// ident consumes an identifier. Non-reserved keywords are also accepted as
// identifiers so column names like "key" or type names work as table names.
func (p *parser) ident() (string, error) {
	if p.tok.Type == TokenIdent {
		v := p.tok.Val
		return v, p.advance()
	}
	// Permit a few keyword-identifiers that commonly appear as column names.
	if p.tok.Type == TokenKeyword {
		switch p.tok.Val {
		case "KEY", "COUNT", "SUM", "AVG", "MIN", "MAX", "END", "DEFAULT",
			"TEXT", "VARIABLE", "TABLES", "RECOVER":
			v := p.tok.Val
			return v, p.advance()
		}
	}
	return "", p.errf("expected identifier, got %q", p.tok.String())
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("DROP"):
		return p.parseDrop()
	case p.isKeyword("TRUNCATE"):
		return p.parseTruncate()
	case p.isKeyword("BEGIN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &BeginStmt{}, nil
	case p.isKeyword("START"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TRANSACTION"); err != nil {
			return nil, err
		}
		return &BeginStmt{}, nil
	case p.isKeyword("COMMIT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &CommitStmt{}, nil
	case p.isKeyword("ROLLBACK"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &RollbackStmt{}, nil
	case p.isKeyword("XA"):
		return p.parseXA()
	case p.isKeyword("SHOW"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		return &ShowStmt{What: "TABLES"}, nil
	case p.isKeyword("DESCRIBE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DescribeStmt{Table: table}, nil
	case p.isKeyword("SET"):
		return p.parseSet()
	default:
		return nil, p.errf("unsupported statement starting with %q", p.tok.String())
	}
}

// --- SELECT ---

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if ok, err := p.acceptKeyword("DISTINCT"); err != nil {
		return nil, err
	} else if !ok {
		if _, err := p.acceptKeyword("ALL"); err != nil {
			return nil, err
		}
	} else {
		stmt.Distinct = true
	}
	// Projection.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	// FROM is optional (SELECT 1).
	if ok, err := p.acceptKeyword("FROM"); err != nil {
		return nil, err
	} else if ok {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		stmt.From = from
	}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if ok, err := p.acceptKeyword("GROUP"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if ok, err := p.acceptKeyword("HAVING"); err != nil {
		return nil, err
	} else if ok {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if ok, err := p.acceptKeyword("ORDER"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if ok, err := p.acceptKeyword("DESC"); err != nil {
				return nil, err
			} else if ok {
				item.Desc = true
			} else if _, err := p.acceptKeyword("ASC"); err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	lim, err := p.parseLimit()
	if err != nil {
		return nil, err
	}
	stmt.Limit = lim
	if ok, err := p.acceptKeyword("FOR"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("UPDATE"); err != nil {
			return nil, err
		}
		stmt.ForUpdate = true
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// "*"
	if p.isOp("*") {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Star: true}, nil
	}
	// "t.*" requires lookahead: parse expression, then check for ".*" pattern.
	// Handle it up front: IDENT "." "*".
	if p.tok.Type == TokenIdent {
		save := *p
		name := p.tok.Val
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		if p.isOp(".") {
			if err := p.advance(); err != nil {
				return SelectItem{}, err
			}
			if p.isOp("*") {
				if err := p.advance(); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Star: true, StarTable: name}, nil
			}
		}
		*p = save // not "t.*": rewind and parse as expression
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if ok, err := p.acceptKeyword("AS"); err != nil {
		return SelectItem{}, err
	} else if ok {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.tok.Type == TokenIdent {
		item.Alias = p.tok.Val
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	}
	return item, nil
}

func (p *parser) parseFrom() ([]TableRef, error) {
	var refs []TableRef
	first, err := p.parseTableRef(JoinNone)
	if err != nil {
		return nil, err
	}
	refs = append(refs, first)
	for {
		switch {
		case p.isOp(","):
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef(JoinCross)
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		case p.isKeyword("JOIN"), p.isKeyword("INNER"), p.isKeyword("LEFT"),
			p.isKeyword("RIGHT"), p.isKeyword("CROSS"):
			jt := JoinInner
			switch p.tok.Val {
			case "LEFT":
				jt = JoinLeft
			case "RIGHT":
				jt = JoinRight
			case "CROSS":
				jt = JoinCross
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.acceptKeyword("OUTER"); err != nil {
				return nil, err
			}
			if p.tok.Val != "JOIN" && jt != JoinInner {
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
			} else if p.isKeyword("JOIN") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			r, err := p.parseTableRef(jt)
			if err != nil {
				return nil, err
			}
			if jt != JoinCross {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				r.On = on
			}
			refs = append(refs, r)
		default:
			return refs, nil
		}
	}
}

func (p *parser) parseTableRef(jt JoinType) (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	r := TableRef{Name: name, Join: jt}
	if ok, err := p.acceptKeyword("AS"); err != nil {
		return TableRef{}, err
	} else if ok {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		r.Alias = a
	} else if p.tok.Type == TokenIdent {
		r.Alias = p.tok.Val
		if err := p.advance(); err != nil {
			return TableRef{}, err
		}
	}
	return r, nil
}

// parseLimit accepts both dialect forms:
// MySQL:      LIMIT count | LIMIT offset, count
// PostgreSQL: LIMIT count [OFFSET offset]
func (p *parser) parseLimit() (*Limit, error) {
	ok, err := p.acceptKeyword("LIMIT")
	if err != nil || !ok {
		return nil, err
	}
	first, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if ok, err := p.acceptOp(","); err != nil {
		return nil, err
	} else if ok {
		count, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Limit{Offset: first, Count: count}, nil
	}
	if ok, err := p.acceptKeyword("OFFSET"); err != nil {
		return nil, err
	} else if ok {
		off, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Limit{Offset: off, Count: first}, nil
	}
	return &Limit{Count: first}, nil
}

// --- INSERT / UPDATE / DELETE ---

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if ok, err := p.acceptOp("("); err != nil {
		return nil, err
	} else if ok {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, c)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	if ok, err := p.acceptKeyword("AS"); err != nil {
		return nil, err
	} else if ok {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.Alias = a
	} else if p.tok.Type == TokenIdent {
		stmt.Alias = p.tok.Val
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		// Allow qualified "alias.col".
		if ok, err := p.acceptOp("."); err != nil {
			return nil, err
		} else if ok {
			col, err = p.ident()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Value: v})
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.tok.Type == TokenIdent {
		stmt.Alias = p.tok.Val
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

// --- DDL ---

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if ok, err := p.acceptKeyword("INDEX"); err != nil {
		return nil, err
	} else if ok {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var cols []string
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: name, Table: table, Columns: cols}, nil
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{}
	if ok, err := p.acceptKeyword("IF"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		if p.isKeyword("PRIMARY") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				stmt.PrimaryKey = append(stmt.PrimaryKey, c)
				if ok, err := p.acceptOp(","); err != nil {
					return nil, err
				} else if !ok {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
		}
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return ColumnDef{}, err
	}
	if p.tok.Type != TokenKeyword && p.tok.Type != TokenIdent {
		return ColumnDef{}, p.errf("expected column type, got %q", p.tok.String())
	}
	typeName := upper(p.tok.Val)
	if err := p.advance(); err != nil {
		return ColumnDef{}, err
	}
	def := ColumnDef{Name: name, TypeName: typeName}
	switch typeName {
	case "INT", "INTEGER", "BIGINT":
		def.Type = sqltypes.KindInt
	case "FLOAT", "DOUBLE", "DECIMAL":
		def.Type = sqltypes.KindFloat
	case "VARCHAR", "CHAR", "TEXT":
		def.Type = sqltypes.KindString
	case "BOOLEAN":
		def.Type = sqltypes.KindBool
	default:
		return ColumnDef{}, p.errf("unsupported column type %q", typeName)
	}
	if ok, err := p.acceptOp("("); err != nil {
		return ColumnDef{}, err
	} else if ok {
		if p.tok.Type != TokenInt {
			return ColumnDef{}, p.errf("expected size, got %q", p.tok.String())
		}
		n, _ := strconv.Atoi(p.tok.Val)
		def.Size = n
		if err := p.advance(); err != nil {
			return ColumnDef{}, err
		}
		// DECIMAL(p, s): skip the scale.
		if ok, err := p.acceptOp(","); err != nil {
			return ColumnDef{}, err
		} else if ok {
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
		}
		if err := p.expectOp(")"); err != nil {
			return ColumnDef{}, err
		}
	}
	for {
		switch {
		case p.isKeyword("PRIMARY"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			if err := p.expectKeyword("KEY"); err != nil {
				return ColumnDef{}, err
			}
			def.PrimaryKey = true
		case p.isKeyword("NOT"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			if err := p.expectKeyword("NULL"); err != nil {
				return ColumnDef{}, err
			}
			def.NotNull = true
		case p.isKeyword("NULL"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
		case p.isKeyword("AUTO_INCREMENT"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			def.AutoIncrement = true
		case p.isKeyword("DEFAULT"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			// Consume and ignore the default literal.
			if _, err := p.parsePrimary(); err != nil {
				return ColumnDef{}, err
			}
		default:
			return def, nil
		}
	}
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &DropTableStmt{}
	if ok, err := p.acceptKeyword("IF"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	return stmt, nil
}

func (p *parser) parseTruncate() (Statement, error) {
	if err := p.expectKeyword("TRUNCATE"); err != nil {
		return nil, err
	}
	if _, err := p.acceptKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &TruncateStmt{Table: table}, nil
}

// --- TCL / XA / SET ---

func (p *parser) parseXA() (Statement, error) {
	if err := p.expectKeyword("XA"); err != nil {
		return nil, err
	}
	var op XAOp
	switch {
	case p.isKeyword("BEGIN") || p.isKeyword("START"):
		op = XABegin
	case p.isKeyword("END"):
		op = XAEnd
	case p.isKeyword("PREPARE"):
		op = XAPrepare
	case p.isKeyword("COMMIT"):
		op = XACommit
	case p.isKeyword("ROLLBACK"):
		op = XARollback
	case p.isKeyword("RECOVER"):
		op = XARecover
	case p.tok.Type == TokenIdent && upper(p.tok.Val) == "ADOPT":
		// ADOPT is not a reserved word: it lexes as an identifier.
		op = XAAdopt
	default:
		return nil, p.errf("unsupported XA verb %q", p.tok.String())
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt := &XAStmt{Op: op}
	if op != XARecover {
		if p.tok.Type != TokenString {
			return nil, p.errf("expected XID string, got %q", p.tok.String())
		}
		stmt.XID = p.tok.Val
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseSet() (Statement, error) {
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	// Accept "SET VARIABLE name = v" (DistSQL RAL) and "SET name = v".
	if _, err := p.acceptKeyword("VARIABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	var v sqltypes.Value
	switch t := e.(type) {
	case *Literal:
		v = t.Val
	case *ColumnRef:
		// Bare words like LOCAL parse as column refs; take the text.
		v = sqltypes.NewString(t.Name)
	default:
		return nil, p.errf("SET value must be a literal")
	}
	return &SetStmt{Name: name, Value: v}, nil
}

// --- Expressions (precedence climbing) ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, E: e}, nil
	}
	return p.parsePredicate()
}

// parsePredicate handles comparison, IN, BETWEEN, LIKE, IS NULL.
func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	not := false
	if p.isKeyword("NOT") {
		// lookahead for IN / BETWEEN / LIKE
		if err := p.advance(); err != nil {
			return nil, err
		}
		not = true
	}
	switch {
	case p.isKeyword("IN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := &InExpr{E: left, Not: not}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if ok, err := p.acceptOp(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.isKeyword("BETWEEN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.isKeyword("LIKE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: left, Pattern: pat, Not: not}, nil
	case p.isKeyword("IS"):
		if not {
			return nil, p.errf("unexpected NOT before IS")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		isNot := false
		if ok, err := p.acceptKeyword("NOT"); err != nil {
			return nil, err
		} else if ok {
			isNot = true
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: left, Not: isNot}, nil
	}
	if not {
		return nil, p.errf("expected IN, BETWEEN or LIKE after NOT")
	}
	// Comparison operators.
	if p.tok.Type == TokenOp {
		var op BinOp
		matched := true
		switch p.tok.Val {
		case "=":
			op = OpEQ
		case "<>":
			op = OpNE
		case "<":
			op = OpLT
		case "<=":
			op = OpLE
		case ">":
			op = OpGT
		case ">=":
			op = OpGE
		default:
			matched = false
		}
		if matched {
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.Type == TokenOp && (p.tok.Val == "+" || p.tok.Val == "-" || p.tok.Val == "||") {
		op := OpAdd
		switch p.tok.Val {
		case "-":
			op = OpSub
		case "||":
			op = OpConcat
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Type == TokenOp && (p.tok.Val == "*" || p.tok.Val == "/" || p.tok.Val == "%") {
		op := OpMul
		switch p.tok.Val {
		case "/":
			op = OpDiv
		case "%":
			op = OpMod
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.isOp("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals, so "-5" routes and serializes naturally.
		if lit, ok := e.(*Literal); ok {
			switch lit.Val.Kind {
			case sqltypes.KindInt:
				return &Literal{Val: sqltypes.NewInt(-lit.Val.I)}, nil
			case sqltypes.KindFloat:
				return &Literal{Val: sqltypes.NewFloat(-lit.Val.F)}, nil
			}
		}
		return &UnaryExpr{Op: OpNeg, E: e}, nil
	}
	if p.isOp("+") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.Type {
	case TokenInt:
		n, err := strconv.ParseInt(p.tok.Val, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", p.tok.Val)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: sqltypes.NewInt(n)}, nil
	case TokenFloat:
		f, err := strconv.ParseFloat(p.tok.Val, 64)
		if err != nil {
			return nil, p.errf("bad float literal %q", p.tok.Val)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: sqltypes.NewFloat(f)}, nil
	case TokenString:
		s := p.tok.Val
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: sqltypes.NewString(s)}, nil
	case TokenPlaceholder:
		idx := p.nArg
		p.nArg++
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Placeholder{Index: idx}, nil
	case TokenKeyword:
		switch p.tok.Val {
		case "NULL":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Literal{Val: sqltypes.Null}, nil
		case "TRUE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Literal{Val: sqltypes.NewBool(true)}, nil
		case "FALSE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Literal{Val: sqltypes.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseFuncCall(p.tok.Val)
		}
		return nil, p.errf("unexpected keyword %q in expression", p.tok.Val)
	case TokenIdent:
		name := p.tok.Val
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isOp("(") {
			return p.parseFuncCall(name)
		}
		if p.isOp(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil
	case TokenOp:
		if p.tok.Val == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", p.tok.String())
}

// parseFuncCall parses name(...). The name token has already been consumed
// for identifiers; for aggregate keywords it is still current.
func (p *parser) parseFuncCall(name string) (Expr, error) {
	if p.tok.Type == TokenKeyword && upper(p.tok.Val) == upper(name) {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	f := &FuncExpr{Name: upper(name)}
	if ok, err := p.acceptOp("*"); err != nil {
		return nil, err
	} else if ok {
		f.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if ok, err := p.acceptOp(")"); err != nil {
		return nil, err
	} else if ok {
		return f, nil
	}
	if ok, err := p.acceptKeyword("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		f.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if ok, err := p.acceptOp(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if !p.isKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.isKeyword("WHEN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{When: w, Then: t})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if ok, err := p.acceptKeyword("ELSE"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
