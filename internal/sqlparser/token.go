// Package sqlparser implements the SQL front end shared by the sharding
// kernel and the per-node query processors: a lexer, a recursive-descent
// parser producing an AST, and a dialect-aware serializer used by the SQL
// rewriter (paper Section VI-A, VI-C).
//
// The grammar covers the SQL-92 subset the paper's data sources rely on:
// SELECT with joins, grouping, ordering and pagination; multi-row INSERT;
// UPDATE; DELETE; table DDL; transaction control; and the XA verbs the
// distributed transaction manager sends to data nodes.
package sqlparser

import "fmt"

// TokenType classifies a lexical token.
type TokenType uint8

// Token types. Keywords are folded into TokenKeyword with the upper-cased
// text in Token.Val, which keeps the lexer table-free and the parser
// readable ("p.accept(TokenKeyword, "SELECT")").
const (
	TokenEOF TokenType = iota
	TokenIdent
	TokenKeyword
	TokenInt
	TokenFloat
	TokenString
	TokenPlaceholder // ?
	TokenOp          // operators and punctuation: = < > <= >= <> != ( ) , . * + - / %
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Type TokenType
	Val  string
	Pos  int
}

func (t Token) String() string {
	switch t.Type {
	case TokenEOF:
		return "<eof>"
	case TokenString:
		return fmt.Sprintf("'%s'", t.Val)
	default:
		return t.Val
	}
}

// keywords is the reserved-word set. Identifiers matching these (case
// insensitively) lex as TokenKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "AS": true, "JOIN": true,
	"INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true, "CROSS": true,
	"ON": true, "GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true, "DISTINCT": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "DROP": true, "TRUNCATE": true,
	"INDEX": true, "PRIMARY": true, "KEY": true, "IF": true, "EXISTS": true,
	"BEGIN": true, "START": true, "TRANSACTION": true, "COMMIT": true,
	"ROLLBACK": true, "XA": true, "PREPARE": true, "END": true, "RECOVER": true,
	"FOR": true, "SHOW": true, "TABLES": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "INT": true, "INTEGER": true,
	"BIGINT": true, "FLOAT": true, "DOUBLE": true, "VARCHAR": true, "CHAR": true,
	"TEXT": true, "BOOLEAN": true, "DECIMAL": true, "UNION": true, "ALL": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "USE": true,
	"DESCRIBE":       true,
	"AUTO_INCREMENT": true, "DEFAULT": true, "VARIABLE": true,
}

// aggregateFuncs is the set of aggregate function names the merger
// understands (paper Section VI-E).
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregateFunc reports whether name (any case) is an aggregate function.
func IsAggregateFunc(name string) bool { return aggregateFuncs[upper(name)] }
