package sqlparser

import (
	"strings"
	"testing"

	"shardingsphere/internal/sqltypes"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t_user").(*SelectStmt)
	if len(stmt.Items) != 1 || !stmt.Items[0].Star {
		t.Fatalf("expected star projection, got %+v", stmt.Items)
	}
	if len(stmt.From) != 1 || stmt.From[0].Name != "t_user" {
		t.Fatalf("expected FROM t_user, got %+v", stmt.From)
	}
}

func TestParseSelectColumnsAndAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT uid, name AS n, u.age a FROM t_user u").(*SelectStmt)
	if len(stmt.Items) != 3 {
		t.Fatalf("want 3 items, got %d", len(stmt.Items))
	}
	if stmt.Items[1].Alias != "n" {
		t.Errorf("want alias n, got %q", stmt.Items[1].Alias)
	}
	if stmt.Items[2].Alias != "a" {
		t.Errorf("want implicit alias a, got %q", stmt.Items[2].Alias)
	}
	col := stmt.Items[2].Expr.(*ColumnRef)
	if col.Table != "u" || col.Name != "age" {
		t.Errorf("want u.age, got %+v", col)
	}
	if stmt.From[0].Alias != "u" {
		t.Errorf("want table alias u, got %q", stmt.From[0].Alias)
	}
}

func TestParseWhereOperators(t *testing.T) {
	tests := []struct {
		sql  string
		want BinOp
	}{
		{"SELECT * FROM t WHERE a = 1", OpEQ},
		{"SELECT * FROM t WHERE a <> 1", OpNE},
		{"SELECT * FROM t WHERE a != 1", OpNE},
		{"SELECT * FROM t WHERE a < 1", OpLT},
		{"SELECT * FROM t WHERE a <= 1", OpLE},
		{"SELECT * FROM t WHERE a > 1", OpGT},
		{"SELECT * FROM t WHERE a >= 1", OpGE},
	}
	for _, tc := range tests {
		stmt := mustParse(t, tc.sql).(*SelectStmt)
		be, ok := stmt.Where.(*BinaryExpr)
		if !ok || be.Op != tc.want {
			t.Errorf("%s: want op %v, got %+v", tc.sql, tc.want, stmt.Where)
		}
	}
}

func TestParseInBetweenLike(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE uid IN (1, 2, 3)").(*SelectStmt)
	in := stmt.Where.(*InExpr)
	if len(in.List) != 3 || in.Not {
		t.Fatalf("bad IN parse: %+v", in)
	}

	stmt = mustParse(t, "SELECT * FROM t WHERE uid NOT IN (1)").(*SelectStmt)
	if !stmt.Where.(*InExpr).Not {
		t.Fatal("NOT IN lost")
	}

	stmt = mustParse(t, "SELECT * FROM t WHERE uid BETWEEN 5 AND 10").(*SelectStmt)
	bw := stmt.Where.(*BetweenExpr)
	if bw.Lo.(*Literal).Val.I != 5 || bw.Hi.(*Literal).Val.I != 10 {
		t.Fatalf("bad BETWEEN parse: %+v", bw)
	}

	stmt = mustParse(t, "SELECT * FROM t WHERE name LIKE 'a%'").(*SelectStmt)
	lk := stmt.Where.(*LikeExpr)
	if lk.Pattern.(*Literal).Val.S != "a%" {
		t.Fatalf("bad LIKE parse: %+v", lk)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").(*SelectStmt)
	or := stmt.Where.(*BinaryExpr)
	if or.Op != OpOr {
		t.Fatalf("want OR at top, got %v", or.Op)
	}
	and := or.R.(*BinaryExpr)
	if and.Op != OpAnd {
		t.Fatalf("want AND on right, got %v", and.Op)
	}
	// Arithmetic: 1 + 2 * 3 parses as 1 + (2*3).
	stmt = mustParse(t, "SELECT 1 + 2 * 3").(*SelectStmt)
	add := stmt.Items[0].Expr.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("want + at top, got %v", add.Op)
	}
	if add.R.(*BinaryExpr).Op != OpMul {
		t.Fatalf("want * nested")
	}
}

func TestParseJoin(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid WHERE u.uid IN (1, 2)").(*SelectStmt)
	if len(stmt.From) != 2 {
		t.Fatalf("want 2 tables, got %d", len(stmt.From))
	}
	if stmt.From[1].Join != JoinInner || stmt.From[1].On == nil {
		t.Fatalf("bad join: %+v", stmt.From[1])
	}
	stmt = mustParse(t, "SELECT * FROM a LEFT JOIN b ON a.x = b.x").(*SelectStmt)
	if stmt.From[1].Join != JoinLeft {
		t.Fatalf("want LEFT JOIN, got %v", stmt.From[1].Join)
	}
	stmt = mustParse(t, "SELECT * FROM a, b WHERE a.x = b.x").(*SelectStmt)
	if stmt.From[1].Join != JoinCross {
		t.Fatalf("comma join should be cross, got %v", stmt.From[1].Join)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	stmt := mustParse(t, "SELECT name, SUM(score) FROM t_score GROUP BY name HAVING SUM(score) > 10 ORDER BY name DESC LIMIT 10").(*SelectStmt)
	if len(stmt.GroupBy) != 1 || stmt.Having == nil {
		t.Fatalf("bad group/having: %+v", stmt)
	}
	if !stmt.OrderBy[0].Desc {
		t.Fatal("DESC lost")
	}
	if stmt.Limit == nil || stmt.Limit.Count.(*Literal).Val.I != 10 {
		t.Fatalf("bad limit: %+v", stmt.Limit)
	}
}

func TestParseLimitDialects(t *testing.T) {
	// MySQL form: LIMIT offset, count
	stmt := mustParse(t, "SELECT * FROM t LIMIT 20, 10").(*SelectStmt)
	if stmt.Limit.Offset.(*Literal).Val.I != 20 || stmt.Limit.Count.(*Literal).Val.I != 10 {
		t.Fatalf("bad mysql limit: %+v", stmt.Limit)
	}
	// PostgreSQL form: LIMIT count OFFSET offset
	stmt = mustParse(t, "SELECT * FROM t LIMIT 10 OFFSET 20").(*SelectStmt)
	if stmt.Limit.Offset.(*Literal).Val.I != 20 || stmt.Limit.Count.(*Literal).Val.I != 10 {
		t.Fatalf("bad pg limit: %+v", stmt.Limit)
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := mustParse(t, "SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x), COUNT(DISTINCT x) FROM t").(*SelectStmt)
	if len(stmt.Items) != 6 {
		t.Fatalf("want 6 items, got %d", len(stmt.Items))
	}
	if !stmt.Items[0].Expr.(*FuncExpr).Star {
		t.Fatal("COUNT(*) star lost")
	}
	if !stmt.Items[5].Expr.(*FuncExpr).Distinct {
		t.Fatal("DISTINCT lost")
	}
	if !stmt.HasAggregates() {
		t.Fatal("HasAggregates false")
	}
	if got := stmt.AggregateItems(); len(got) != 6 {
		t.Fatalf("AggregateItems: %v", got)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO t_order (oid, uid, note) VALUES (1, 2, 'a'), (3, 4, 'b')").(*InsertStmt)
	if stmt.Table != "t_order" || len(stmt.Columns) != 3 || len(stmt.Rows) != 2 {
		t.Fatalf("bad insert: %+v", stmt)
	}
	if stmt.Rows[1][2].(*Literal).Val.S != "b" {
		t.Fatalf("bad row value")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := mustParse(t, "UPDATE t_user SET name = 'x', age = age + 1 WHERE uid = 7").(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("bad update: %+v", up)
	}
	del := mustParse(t, "DELETE FROM t_user WHERE uid = 7").(*DeleteStmt)
	if del.Table != "t_user" || del.Where == nil {
		t.Fatalf("bad delete: %+v", del)
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE IF NOT EXISTS sbtest1 (
		id INT PRIMARY KEY AUTO_INCREMENT,
		k INT NOT NULL,
		c VARCHAR(120),
		pad CHAR(60)
	)`).(*CreateTableStmt)
	if !stmt.IfNotExists || len(stmt.Columns) != 4 {
		t.Fatalf("bad create: %+v", stmt)
	}
	if !stmt.Columns[0].PrimaryKey || !stmt.Columns[0].AutoIncrement {
		t.Fatalf("pk flags lost: %+v", stmt.Columns[0])
	}
	if stmt.Columns[2].Size != 120 {
		t.Fatalf("varchar size lost: %+v", stmt.Columns[2])
	}
	if stmt.Columns[1].Type != sqltypes.KindInt {
		t.Fatalf("int type lost")
	}
}

func TestParseCreateTableTablePK(t *testing.T) {
	stmt := mustParse(t, "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))").(*CreateTableStmt)
	if len(stmt.PrimaryKey) != 2 {
		t.Fatalf("table-level pk lost: %+v", stmt)
	}
}

func TestParseTCL(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*BeginStmt); !ok {
		t.Fatal("BEGIN")
	}
	if _, ok := mustParse(t, "START TRANSACTION").(*BeginStmt); !ok {
		t.Fatal("START TRANSACTION")
	}
	if _, ok := mustParse(t, "COMMIT").(*CommitStmt); !ok {
		t.Fatal("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*RollbackStmt); !ok {
		t.Fatal("ROLLBACK")
	}
}

func TestParseXA(t *testing.T) {
	stmt := mustParse(t, "XA PREPARE 'gtx-1'").(*XAStmt)
	if stmt.Op != XAPrepare || stmt.XID != "gtx-1" {
		t.Fatalf("bad xa: %+v", stmt)
	}
	stmt = mustParse(t, "XA RECOVER").(*XAStmt)
	if stmt.Op != XARecover {
		t.Fatalf("bad xa recover: %+v", stmt)
	}
}

func TestParsePlaceholders(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a = ? AND b IN (?, ?)").(*SelectStmt)
	var idxs []int
	WalkExpr(stmt.Where, func(e Expr) bool {
		if p, ok := e.(*Placeholder); ok {
			idxs = append(idxs, p.Index)
		}
		return true
	})
	if len(idxs) != 3 || idxs[0] != 0 || idxs[1] != 1 || idxs[2] != 2 {
		t.Fatalf("placeholder numbering: %v", idxs)
	}
}

func TestParseQuotedIdentifiers(t *testing.T) {
	stmt := mustParse(t, "SELECT `select` FROM `t_user` WHERE \"key\" = 1").(*SelectStmt)
	if stmt.From[0].Name != "t_user" {
		t.Fatalf("backtick ident: %+v", stmt.From[0])
	}
	if stmt.Items[0].Expr.(*ColumnRef).Name != "select" {
		t.Fatalf("quoted keyword ident lost")
	}
}

func TestParseComments(t *testing.T) {
	stmt := mustParse(t, "SELECT * -- line comment\nFROM /* block */ t").(*SelectStmt)
	if stmt.From[0].Name != "t" {
		t.Fatal("comments broke parse")
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt := mustParse(t, `SELECT 'it''s', 'a\'b' FROM t`).(*SelectStmt)
	if stmt.Items[0].Expr.(*Literal).Val.S != "it's" {
		t.Fatalf("doubled quote: %q", stmt.Items[0].Expr.(*Literal).Val.S)
	}
	if stmt.Items[1].Expr.(*Literal).Val.S != "a'b" {
		t.Fatalf("backslash quote: %q", stmt.Items[1].Expr.(*Literal).Val.S)
	}
}

func TestParseCase(t *testing.T) {
	stmt := mustParse(t, "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t").(*SelectStmt)
	c := stmt.Items[0].Expr.(*CaseExpr)
	if len(c.Whens) != 1 || c.Else == nil || c.Operand != nil {
		t.Fatalf("bad case: %+v", c)
	}
	stmt = mustParse(t, "SELECT CASE a WHEN 1 THEN 'one' END FROM t").(*SelectStmt)
	if stmt.Items[0].Expr.(*CaseExpr).Operand == nil {
		t.Fatal("operand case lost")
	}
}

func TestParseSet(t *testing.T) {
	stmt := mustParse(t, "SET VARIABLE transaction_type = 'XA'").(*SetStmt)
	if stmt.Name != "transaction_type" || stmt.Value.S != "XA" {
		t.Fatalf("bad set: %+v", stmt)
	}
	stmt = mustParse(t, "SET autocommit = 0").(*SetStmt)
	if stmt.Value.I != 0 {
		t.Fatalf("bad set int: %+v", stmt)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO t VALUES",
		"SELECT * FROM t WHERE a NOT = 1",
		"SELECT * FROM t LIMIT",
		"CREATE TABLE t (a BADTYPE)",
		"SELECT 'unterminated FROM t",
		"XA PREPARE",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("SELECT * FROM t WHERE @")
	if err == nil {
		t.Fatal("want error")
	}
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("want *ParseError, got %T", err)
	}
	if pe.Pos <= 0 || !strings.Contains(pe.Error(), "offset") {
		t.Fatalf("bad error: %v", pe)
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestParseForUpdate(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE id = 1 FOR UPDATE").(*SelectStmt)
	if !stmt.ForUpdate {
		t.Fatal("FOR UPDATE lost")
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT 1;")
	mustParse(t, "COMMIT;")
}

func TestParseStarQualified(t *testing.T) {
	stmt := mustParse(t, "SELECT u.*, o.oid FROM t_user u JOIN t_order o ON u.uid = o.uid").(*SelectStmt)
	if !stmt.Items[0].Star || stmt.Items[0].StarTable != "u" {
		t.Fatalf("qualified star lost: %+v", stmt.Items[0])
	}
}

func TestRoundTripSerialization(t *testing.T) {
	queries := []string{
		"SELECT * FROM t_user",
		"SELECT DISTINCT uid FROM t_user WHERE age > 18 ORDER BY uid DESC LIMIT 5, 10",
		"SELECT name, SUM(score) AS total FROM t_score GROUP BY name HAVING SUM(score) > 10 ORDER BY name",
		"SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid WHERE u.uid IN (1, 2)",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 3",
		"DELETE FROM t WHERE a IS NOT NULL",
		"SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3",
		"SELECT CASE WHEN a > 0 THEN 1 ELSE 0 END FROM t",
		"XA COMMIT 'x1'",
	}
	ser := NewSerializer(DialectMySQL)
	for _, q := range queries {
		stmt1 := mustParse(t, q)
		text := ser.Serialize(stmt1)
		stmt2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", text, q, err)
		}
		text2 := ser.Serialize(stmt2)
		if text != text2 {
			t.Errorf("not a fixpoint:\n 1: %s\n 2: %s", text, text2)
		}
	}
}

func TestSerializeDialectLimit(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t LIMIT 20, 10")
	my := NewSerializer(DialectMySQL).Serialize(stmt)
	pg := NewSerializer(DialectPostgreSQL).Serialize(stmt)
	if !strings.Contains(my, "LIMIT 20, 10") {
		t.Errorf("mysql limit: %s", my)
	}
	if !strings.Contains(pg, "LIMIT 10 OFFSET 20") {
		t.Errorf("pg limit: %s", pg)
	}
}

func TestSerializeQuotesReservedIdents(t *testing.T) {
	stmt := &SelectStmt{
		Items: []SelectItem{{Expr: &ColumnRef{Name: "key"}}},
		From:  []TableRef{{Name: "order"}},
	}
	my := NewSerializer(DialectMySQL).Serialize(stmt)
	if !strings.Contains(my, "`key`") || !strings.Contains(my, "`order`") {
		t.Errorf("mysql quoting: %s", my)
	}
	pg := NewSerializer(DialectPostgreSQL).Serialize(stmt)
	if !strings.Contains(pg, `"key"`) {
		t.Errorf("pg quoting: %s", pg)
	}
}

func TestCloneStatementIsDeep(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE b = 1").(*SelectStmt)
	c := CloneStatement(stmt).(*SelectStmt)
	c.From[0].Name = "t_actual_0"
	c.Where.(*BinaryExpr).L.(*ColumnRef).Name = "zzz"
	if stmt.From[0].Name != "t" {
		t.Fatal("clone shares From")
	}
	if stmt.Where.(*BinaryExpr).L.(*ColumnRef).Name != "b" {
		t.Fatal("clone shares Where")
	}
}

func TestRenameTables(t *testing.T) {
	stmt := mustParse(t, "SELECT t_user.name FROM t_user JOIN t_order ON t_user.uid = t_order.uid")
	RenameTables(stmt, map[string]string{"t_user": "t_user_0", "t_order": "t_order_0"})
	sel := stmt.(*SelectStmt)
	if sel.From[0].Name != "t_user_0" || sel.From[1].Name != "t_order_0" {
		t.Fatalf("tables not renamed: %+v", sel.From)
	}
	if sel.Items[0].Expr.(*ColumnRef).Table != "t_user_0" {
		t.Fatal("column qualifier not renamed")
	}
	on := sel.From[1].On.(*BinaryExpr)
	if on.L.(*ColumnRef).Table != "t_user_0" || on.R.(*ColumnRef).Table != "t_order_0" {
		t.Fatal("ON qualifiers not renamed")
	}
}

func TestRenameTablesKeepsAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT u.name FROM t_user u WHERE u.uid = 1")
	RenameTables(stmt, map[string]string{"t_user": "t_user_0"})
	sel := stmt.(*SelectStmt)
	if sel.From[0].Name != "t_user_0" || sel.From[0].Alias != "u" {
		t.Fatalf("rename with alias: %+v", sel.From[0])
	}
	if sel.Items[0].Expr.(*ColumnRef).Table != "u" {
		t.Fatal("alias qualifier must not be renamed")
	}
}

func TestTableNames(t *testing.T) {
	if got := TableNames(mustParse(t, "SELECT * FROM a, b")); len(got) != 2 {
		t.Fatalf("TableNames select: %v", got)
	}
	if got := TableNames(mustParse(t, "INSERT INTO x VALUES (1)")); len(got) != 1 || got[0] != "x" {
		t.Fatalf("TableNames insert: %v", got)
	}
	if got := TableNames(mustParse(t, "COMMIT")); got != nil {
		t.Fatalf("TableNames commit: %v", got)
	}
}

func TestStatementTypes(t *testing.T) {
	cases := map[string]StatementType{
		"SELECT 1":                 StmtSelect,
		"INSERT INTO t VALUES (1)": StmtInsert,
		"UPDATE t SET a = 1":       StmtUpdate,
		"DELETE FROM t":            StmtDelete,
		"CREATE TABLE t (a INT)":   StmtDDL,
		"DROP TABLE t":             StmtDDL,
		"TRUNCATE TABLE t":         StmtDDL,
		"BEGIN":                    StmtTCL,
		"XA RECOVER":               StmtXA,
		"SHOW TABLES":              StmtShow,
		"SET autocommit = 1":       StmtSet,
	}
	for sql, want := range cases {
		if got := mustParse(t, sql).StatementType(); got != want {
			t.Errorf("%q: want %v, got %v", sql, want, got)
		}
	}
	if !StmtInsert.IsDML() || StmtSelect.IsDML() {
		t.Error("IsDML misclassifies")
	}
}

// TestParserNeverPanics feeds mutated and truncated inputs; every outcome
// must be a clean error or a statement, never a panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"SELECT a, b FROM t WHERE a = 1 AND b IN (2, 3) ORDER BY a LIMIT 5, 10",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 3",
		"CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10))",
		"SELECT COUNT(*), AVG(x) FROM t GROUP BY y HAVING SUM(x) > 1",
		"XA PREPARE 'x-1'",
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	// Truncations.
	for _, seed := range seeds {
		for cut := 0; cut <= len(seed); cut++ {
			Parse(seed[:cut])
		}
	}
	// Deterministic mutations: flip each byte through a set of hostile
	// characters.
	hostile := []byte{'\'', '"', '`', '(', ')', ',', '?', '%', 0, 0xff}
	for _, seed := range seeds {
		b := []byte(seed)
		for i := 0; i < len(b); i += 3 {
			for _, h := range hostile {
				old := b[i]
				b[i] = h
				Parse(string(b))
				b[i] = old
			}
		}
	}
}

func TestParseMoreSyntax(t *testing.T) {
	// Explicit CROSS JOIN.
	stmt := mustParse(t, "SELECT * FROM a CROSS JOIN b").(*SelectStmt)
	if stmt.From[1].Join != JoinCross || stmt.From[1].On != nil {
		t.Fatalf("cross join: %+v", stmt.From[1])
	}
	// RIGHT OUTER JOIN.
	stmt = mustParse(t, "SELECT * FROM a RIGHT OUTER JOIN b ON a.x = b.x").(*SelectStmt)
	if stmt.From[1].Join != JoinRight {
		t.Fatalf("right outer: %v", stmt.From[1].Join)
	}
	// Scientific notation and negative literals.
	stmt = mustParse(t, "SELECT -1.5e3, 2E2, -7").(*SelectStmt)
	if stmt.Items[0].Expr.(*Literal).Val.F != -1500 {
		t.Fatalf("exponent: %v", stmt.Items[0].Expr)
	}
	if stmt.Items[2].Expr.(*Literal).Val.I != -7 {
		t.Fatalf("negative fold: %v", stmt.Items[2].Expr)
	}
	// String concatenation operator.
	stmt = mustParse(t, "SELECT a || 'x' FROM t").(*SelectStmt)
	if stmt.Items[0].Expr.(*BinaryExpr).Op != OpConcat {
		t.Fatal("|| lost")
	}
	// DECIMAL(p, s) column type.
	ct := mustParse(t, "CREATE TABLE t (a DECIMAL(10, 2) PRIMARY KEY)").(*CreateTableStmt)
	if ct.Columns[0].Size != 10 {
		t.Fatalf("decimal size: %+v", ct.Columns[0])
	}
	// DESCRIBE.
	d := mustParse(t, "DESCRIBE t_user").(*DescribeStmt)
	if d.Table != "t_user" {
		t.Fatalf("describe: %+v", d)
	}
	// Unary NOT and arithmetic unary minus over a column.
	stmt = mustParse(t, "SELECT -a FROM t WHERE NOT a = 1").(*SelectStmt)
	if _, ok := stmt.Items[0].Expr.(*UnaryExpr); !ok {
		t.Fatal("unary minus lost")
	}
	if _, ok := stmt.Where.(*UnaryExpr); !ok {
		t.Fatal("NOT lost")
	}
}

func TestSerializeAllStatementKinds(t *testing.T) {
	// Round-trip each statement type under both dialects to exercise the
	// serializer's branches.
	statements := []string{
		"SELECT u.*, COUNT(*) AS c FROM t_user u LEFT JOIN t_o o ON u.id = o.id WHERE u.x IS NOT NULL AND u.y NOT IN (1, 2) GROUP BY u.z HAVING COUNT(*) > 1 ORDER BY c DESC LIMIT 3 OFFSET 6 FOR UPDATE",
		"SELECT CASE a WHEN 1 THEN 'x' ELSE 'y' END, a NOT BETWEEN 1 AND 2, b NOT LIKE 'z%' FROM t",
		"INSERT INTO t VALUES (NULL, TRUE, FALSE, -2.5)",
		"UPDATE t x SET a = a % 2 WHERE b || 'q' = 'vq'",
		"DELETE FROM t WHERE a IS NULL",
		"CREATE TABLE IF NOT EXISTS t (a INT PRIMARY KEY AUTO_INCREMENT, b VARCHAR(10) NOT NULL, PRIMARY KEY (a))",
		"DROP TABLE IF EXISTS t",
		"TRUNCATE TABLE t",
		"CREATE INDEX i ON t (a, b)",
		"BEGIN", "COMMIT", "ROLLBACK",
		"XA BEGIN 'g'", "XA END 'g'", "XA PREPARE 'g'", "XA COMMIT 'g'", "XA ROLLBACK 'g'", "XA RECOVER",
		"SHOW TABLES",
		"DESCRIBE t",
		"SET autocommit = 1",
	}
	for _, d := range []Dialect{DialectMySQL, DialectPostgreSQL} {
		ser := NewSerializer(d)
		for _, sql := range statements {
			stmt, err := Parse(sql)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			text := ser.Serialize(stmt)
			if _, err := Parse(text); err != nil {
				t.Fatalf("reparse %q (from %q, %v): %v", text, sql, d, err)
			}
		}
	}
}

func TestDialectNames(t *testing.T) {
	if DialectMySQL.String() != "MySQL" || DialectPostgreSQL.String() != "PostgreSQL" {
		t.Fatal("dialect names")
	}
}

func TestWalkExprPrunes(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a = 1 AND b = 2").(*SelectStmt)
	visits := 0
	WalkExpr(stmt.Where, func(e Expr) bool {
		visits++
		_, isBin := e.(*BinaryExpr)
		return !isBin || visits == 1 // prune below the two comparisons
	})
	if visits != 3 { // AND + its two children, pruned there
		t.Fatalf("visits: %d", visits)
	}
}
