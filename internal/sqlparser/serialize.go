package sqlparser

import (
	"fmt"
	"strings"
)

// fmtSprintf is a thin alias so parser.go keeps a single fmt dependency
// point.
func fmtSprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Serializer renders AST nodes back to SQL text for a target dialect. The
// SQL rewriter (paper Section VI-C) mutates the AST — renaming logic tables
// to actual tables, deriving columns, revising pagination — and then uses a
// Serializer to produce the executable statements sent to data nodes.
type Serializer struct {
	Dialect Dialect
	// QuoteIdents forces identifier quoting; default leaves bare
	// identifiers unquoted, which keeps rewritten SQL human-readable.
	QuoteIdents bool
}

// NewSerializer returns a serializer for the dialect.
func NewSerializer(d Dialect) *Serializer { return &Serializer{Dialect: d} }

func (s *Serializer) quote(ident string) string {
	if !s.QuoteIdents && !needsQuote(ident) {
		return ident
	}
	if s.Dialect == DialectPostgreSQL {
		return `"` + strings.ReplaceAll(ident, `"`, `""`) + `"`
	}
	return "`" + strings.ReplaceAll(ident, "`", "``") + "`"
}

// QuoteIdent renders an identifier for the dialect, quoting only when
// required — the same rules the Serializer applies. The rewrite template
// uses it to splice actual table names into pre-serialized SQL.
func QuoteIdent(d Dialect, ident string) string {
	return (&Serializer{Dialect: d}).quote(ident)
}

func needsQuote(ident string) bool {
	if ident == "" {
		return true
	}
	if keywords[upper(ident)] {
		return true
	}
	for i := 0; i < len(ident); i++ {
		c := ident[i]
		if !isIdentPart(c) {
			return true
		}
	}
	return !isIdentStart(ident[0])
}

// Serialize renders a statement to SQL text.
func (s *Serializer) Serialize(stmt Statement) string {
	var b strings.Builder
	s.writeStmt(&b, stmt)
	return b.String()
}

// SerializeExpr renders one expression to SQL text.
func (s *Serializer) SerializeExpr(e Expr) string {
	var b strings.Builder
	s.writeExpr(&b, e)
	return b.String()
}

func (s *Serializer) writeStmt(b *strings.Builder, stmt Statement) {
	switch t := stmt.(type) {
	case *SelectStmt:
		s.writeSelect(b, t)
	case *InsertStmt:
		s.writeInsert(b, t)
	case *UpdateStmt:
		s.writeUpdate(b, t)
	case *DeleteStmt:
		s.writeDelete(b, t)
	case *CreateTableStmt:
		s.writeCreateTable(b, t)
	case *DropTableStmt:
		b.WriteString("DROP TABLE ")
		if t.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(s.quote(t.Table))
	case *TruncateStmt:
		b.WriteString("TRUNCATE TABLE ")
		b.WriteString(s.quote(t.Table))
	case *CreateIndexStmt:
		fmt.Fprintf(b, "CREATE INDEX %s ON %s (%s)", s.quote(t.Name), s.quote(t.Table), s.identList(t.Columns))
	case *BeginStmt:
		b.WriteString("BEGIN")
	case *CommitStmt:
		b.WriteString("COMMIT")
	case *RollbackStmt:
		b.WriteString("ROLLBACK")
	case *XAStmt:
		b.WriteString(t.Op.String())
		if t.Op != XARecover {
			b.WriteString(" '")
			b.WriteString(strings.ReplaceAll(t.XID, "'", "''"))
			b.WriteString("'")
		}
	case *ShowStmt:
		b.WriteString("SHOW ")
		b.WriteString(t.What)
	case *DescribeStmt:
		b.WriteString("DESCRIBE ")
		b.WriteString(s.quote(t.Table))
	case *SetStmt:
		fmt.Fprintf(b, "SET %s = %s", t.Name, t.Value.SQLLiteral())
	default:
		fmt.Fprintf(b, "/* unserializable %T */", stmt)
	}
}

func (s *Serializer) identList(cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = s.quote(c)
	}
	return strings.Join(parts, ", ")
}

func (s *Serializer) writeSelect(b *strings.Builder, t *SelectStmt) {
	b.WriteString("SELECT ")
	if t.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, item := range t.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case item.Star && item.StarTable != "":
			b.WriteString(s.quote(item.StarTable))
			b.WriteString(".*")
		case item.Star:
			b.WriteString("*")
		default:
			s.writeExpr(b, item.Expr)
			if item.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(s.quote(item.Alias))
			}
		}
	}
	if len(t.From) > 0 {
		b.WriteString(" FROM ")
		for i, ref := range t.From {
			if i > 0 {
				if ref.Join == JoinCross && ref.On == nil {
					b.WriteString(", ")
				} else {
					b.WriteString(" ")
					b.WriteString(ref.Join.String())
					b.WriteString(" ")
				}
			}
			b.WriteString(s.quote(ref.Name))
			if ref.Alias != "" {
				b.WriteString(" ")
				b.WriteString(s.quote(ref.Alias))
			}
			if ref.On != nil {
				b.WriteString(" ON ")
				s.writeExpr(b, ref.On)
			}
		}
	}
	if t.Where != nil {
		b.WriteString(" WHERE ")
		s.writeExpr(b, t.Where)
	}
	if len(t.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range t.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			s.writeExpr(b, e)
		}
	}
	if t.Having != nil {
		b.WriteString(" HAVING ")
		s.writeExpr(b, t.Having)
	}
	if len(t.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range t.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			s.writeExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if t.Limit != nil {
		if s.Dialect == DialectPostgreSQL {
			b.WriteString(" LIMIT ")
			s.writeExpr(b, t.Limit.Count)
			if t.Limit.Offset != nil {
				b.WriteString(" OFFSET ")
				s.writeExpr(b, t.Limit.Offset)
			}
		} else {
			b.WriteString(" LIMIT ")
			if t.Limit.Offset != nil {
				s.writeExpr(b, t.Limit.Offset)
				b.WriteString(", ")
			}
			s.writeExpr(b, t.Limit.Count)
		}
	}
	if t.ForUpdate {
		b.WriteString(" FOR UPDATE")
	}
}

func (s *Serializer) writeInsert(b *strings.Builder, t *InsertStmt) {
	b.WriteString("INSERT INTO ")
	b.WriteString(s.quote(t.Table))
	if len(t.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(s.identList(t.Columns))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, row := range t.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			s.writeExpr(b, e)
		}
		b.WriteString(")")
	}
}

func (s *Serializer) writeUpdate(b *strings.Builder, t *UpdateStmt) {
	b.WriteString("UPDATE ")
	b.WriteString(s.quote(t.Table))
	if t.Alias != "" {
		b.WriteString(" ")
		b.WriteString(s.quote(t.Alias))
	}
	b.WriteString(" SET ")
	for i, a := range t.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.quote(a.Column))
		b.WriteString(" = ")
		s.writeExpr(b, a.Value)
	}
	if t.Where != nil {
		b.WriteString(" WHERE ")
		s.writeExpr(b, t.Where)
	}
}

func (s *Serializer) writeDelete(b *strings.Builder, t *DeleteStmt) {
	b.WriteString("DELETE FROM ")
	b.WriteString(s.quote(t.Table))
	if t.Alias != "" {
		b.WriteString(" ")
		b.WriteString(s.quote(t.Alias))
	}
	if t.Where != nil {
		b.WriteString(" WHERE ")
		s.writeExpr(b, t.Where)
	}
}

func (s *Serializer) writeCreateTable(b *strings.Builder, t *CreateTableStmt) {
	b.WriteString("CREATE TABLE ")
	if t.IfNotExists {
		b.WriteString("IF NOT EXISTS ")
	}
	b.WriteString(s.quote(t.Table))
	b.WriteString(" (")
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.quote(c.Name))
		b.WriteString(" ")
		b.WriteString(c.TypeName)
		if c.Size > 0 {
			fmt.Fprintf(b, "(%d)", c.Size)
		}
		if c.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		}
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
		if c.AutoIncrement {
			b.WriteString(" AUTO_INCREMENT")
		}
	}
	if len(t.PrimaryKey) > 0 {
		b.WriteString(", PRIMARY KEY (")
		b.WriteString(s.identList(t.PrimaryKey))
		b.WriteString(")")
	}
	b.WriteString(")")
}

func (s *Serializer) writeExpr(b *strings.Builder, e Expr) {
	switch t := e.(type) {
	case *Literal:
		b.WriteString(t.Val.SQLLiteral())
	case *Placeholder:
		b.WriteString("?")
	case *ColumnRef:
		if t.Table != "" {
			b.WriteString(s.quote(t.Table))
			b.WriteString(".")
		}
		b.WriteString(s.quote(t.Name))
	case *BinaryExpr:
		// Parenthesize nested boolean operators to preserve precedence.
		lparen := needParens(t.Op, t.L)
		rparen := needParens(t.Op, t.R)
		if lparen {
			b.WriteString("(")
		}
		s.writeExpr(b, t.L)
		if lparen {
			b.WriteString(")")
		}
		b.WriteString(" ")
		b.WriteString(t.Op.String())
		b.WriteString(" ")
		if rparen {
			b.WriteString("(")
		}
		s.writeExpr(b, t.R)
		if rparen {
			b.WriteString(")")
		}
	case *UnaryExpr:
		if t.Op == OpNot {
			b.WriteString("NOT (")
			s.writeExpr(b, t.E)
			b.WriteString(")")
		} else {
			b.WriteString("-(")
			s.writeExpr(b, t.E)
			b.WriteString(")")
		}
	case *InExpr:
		s.writeExpr(b, t.E)
		if t.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		for i, x := range t.List {
			if i > 0 {
				b.WriteString(", ")
			}
			s.writeExpr(b, x)
		}
		b.WriteString(")")
	case *BetweenExpr:
		s.writeExpr(b, t.E)
		if t.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		s.writeExpr(b, t.Lo)
		b.WriteString(" AND ")
		s.writeExpr(b, t.Hi)
	case *LikeExpr:
		s.writeExpr(b, t.E)
		if t.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" LIKE ")
		s.writeExpr(b, t.Pattern)
	case *IsNullExpr:
		s.writeExpr(b, t.E)
		b.WriteString(" IS ")
		if t.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("NULL")
	case *FuncExpr:
		b.WriteString(t.Name)
		b.WriteString("(")
		if t.Star {
			b.WriteString("*")
		} else {
			if t.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range t.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				s.writeExpr(b, a)
			}
		}
		b.WriteString(")")
	case *CaseExpr:
		b.WriteString("CASE")
		if t.Operand != nil {
			b.WriteString(" ")
			s.writeExpr(b, t.Operand)
		}
		for _, w := range t.Whens {
			b.WriteString(" WHEN ")
			s.writeExpr(b, w.When)
			b.WriteString(" THEN ")
			s.writeExpr(b, w.Then)
		}
		if t.Else != nil {
			b.WriteString(" ELSE ")
			s.writeExpr(b, t.Else)
		}
		b.WriteString(" END")
	default:
		fmt.Fprintf(b, "/* expr %T */", e)
	}
}

// needParens reports whether a child of a binary operator must be
// parenthesized: OR children under AND, and any boolean child under
// arithmetic/comparison.
func needParens(parent BinOp, child Expr) bool {
	c, ok := child.(*BinaryExpr)
	if !ok {
		return false
	}
	prec := func(op BinOp) int {
		switch op {
		case OpOr:
			return 1
		case OpAnd:
			return 2
		case OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE:
			return 3
		case OpAdd, OpSub, OpConcat:
			return 4
		default:
			return 5
		}
	}
	return prec(c.Op) < prec(parent)
}
