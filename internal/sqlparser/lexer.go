package sqlparser

import (
	"fmt"
	"strings"
)

// upper is an ASCII-only ToUpper, sufficient for SQL keywords and much
// cheaper than the Unicode-aware strings.ToUpper on the parse hot path.
func upper(s string) string {
	hasLower := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'a' && s[i] <= 'z' {
			hasLower = true
			break
		}
	}
	if !hasLower {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// ParseError is a syntax error with the byte offset where it occurred.
type ParseError struct {
	Pos int
	Msg string
	SQL string
}

func (e *ParseError) Error() string {
	snippet := e.SQL
	if e.Pos >= 0 && e.Pos < len(snippet) {
		snippet = snippet[:e.Pos] + "<<HERE>>" + snippet[e.Pos:]
	}
	if len(snippet) > 200 {
		snippet = snippet[:200] + "..."
	}
	return fmt.Sprintf("sql syntax error at offset %d: %s in %q", e.Pos, e.Msg, snippet)
}

// lexer tokenizes a SQL string. Identifiers may be quoted with backticks
// (MySQL) or double quotes (PostgreSQL/SQL-92); both are accepted in every
// dialect so logical SQL written for one dialect parses under the other.
type lexer struct {
	src string
	pos int
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '$' }

// next scans and returns the next token.
func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Type: TokenEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := upper(word)
		if keywords[up] {
			return Token{Type: TokenKeyword, Val: up, Pos: start}, nil
		}
		return Token{Type: TokenIdent, Val: word, Pos: start}, nil
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.scanNumber()
	case c == '\'':
		return l.scanString('\'')
	case c == '`', c == '"':
		return l.scanQuotedIdent(c)
	case c == '?':
		l.pos++
		return Token{Type: TokenPlaceholder, Val: "?", Pos: start}, nil
	}
	// Operators, longest match first.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.pos += 2
		if two == "!=" {
			two = "<>"
		}
		return Token{Type: TokenOp, Val: two, Pos: start}, nil
	}
	switch c {
	case '=', '<', '>', '(', ')', ',', '.', '*', '+', '-', '/', '%', ';':
		l.pos++
		return Token{Type: TokenOp, Val: string(c), Pos: start}, nil
	}
	return Token{}, &ParseError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c), SQL: l.src}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isSpace(c):
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) scanNumber() (Token, error) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
		} else if c == '.' && !isFloat {
			isFloat = true
			l.pos++
		} else if (c == 'e' || c == 'E') && l.pos > start {
			// exponent
			save := l.pos
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				isFloat = true
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			} else {
				l.pos = save
				break
			}
		} else {
			break
		}
	}
	typ := TokenInt
	if isFloat {
		typ = TokenFloat
	}
	return Token{Type: typ, Val: l.src[start:l.pos], Pos: start}, nil
}

// scanString scans a single-quoted string literal. Both doubled quotes
// ('it”s') and backslash escapes ('it\'s') are accepted.
func (l *lexer) scanString(quote byte) (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: TokenString, Val: b.String(), Pos: start}, nil
		case '\\':
			if l.pos+1 < len(l.src) {
				esc := l.src[l.pos+1]
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case 'r':
					b.WriteByte('\r')
				case '0':
					b.WriteByte(0)
				default:
					b.WriteByte(esc)
				}
				l.pos += 2
				continue
			}
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return Token{}, &ParseError{Pos: start, Msg: "unterminated string literal", SQL: l.src}
}

// scanQuotedIdent scans a `quoted` or "quoted" identifier.
func (l *lexer) scanQuotedIdent(quote byte) (Token, error) {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: TokenIdent, Val: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, &ParseError{Pos: start, Msg: "unterminated quoted identifier", SQL: l.src}
}

// Tokenize scans the whole input; used by tests and the DistSQL parser.
func Tokenize(sql string) ([]Token, error) {
	l := &lexer{src: sql}
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == TokenEOF {
			return out, nil
		}
	}
}
