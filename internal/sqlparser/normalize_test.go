package sqlparser

import (
	"testing"

	"shardingsphere/internal/sqltypes"
)

func mustNormalize(t *testing.T, sql string) *Normalized {
	t.Helper()
	n, ok := Normalize(sql)
	if !ok {
		t.Fatalf("Normalize(%q) refused", sql)
	}
	return n
}

func TestNormalizeKeyIsShapeLevel(t *testing.T) {
	a := mustNormalize(t, "SELECT * FROM t_order WHERE order_id = 10")
	b := mustNormalize(t, "select * from t_order where order_id = 9999")
	if a.Key != b.Key {
		t.Fatalf("same shape produced different keys:\n%q\n%q", a.Key, b.Key)
	}
	if a.Key != "SELECT * FROM t_order WHERE order_id = ?" {
		t.Fatalf("unexpected key %q", a.Key)
	}
	if len(a.Args) != 1 || a.Args[0].Arg != -1 || a.Args[0].Lit.AsInt() != 10 {
		t.Fatalf("bad captured args %+v", a.Args)
	}
}

func TestNormalizeKeyReparsesToSameShape(t *testing.T) {
	for _, sql := range []string{
		"SELECT a, b FROM t WHERE id = 7 AND name = 'x' ORDER BY a LIMIT 3",
		"INSERT INTO t (a, b) VALUES (1, 'two'), (3, 'four')",
		"UPDATE t SET a = a + 1, b = 'z' WHERE id = 9",
		"DELETE FROM t WHERE id IN (1, 2, 3)",
		"SELECT * FROM t WHERE x = -5",
		"SELECT COUNT(*) FROM t WHERE id BETWEEN 10 AND 20",
	} {
		n := mustNormalize(t, sql)
		if _, err := Parse(n.Key); err != nil {
			t.Errorf("normalized key %q does not parse: %v", n.Key, err)
		}
	}
}

func TestNormalizeStringEscapes(t *testing.T) {
	a := mustNormalize(t, `SELECT * FROM t WHERE name = 'it''s'`)
	b := mustNormalize(t, `SELECT * FROM t WHERE name = 'it\'s'`)
	c := mustNormalize(t, `SELECT * FROM t WHERE name = 'plain'`)
	if a.Key != b.Key || a.Key != c.Key {
		t.Fatalf("string literals changed the key: %q vs %q vs %q", a.Key, b.Key, c.Key)
	}
	if got := a.Args[0].Lit.AsString(); got != "it's" {
		t.Fatalf("doubled-quote escape captured %q", got)
	}
	if got := b.Args[0].Lit.AsString(); got != "it's" {
		t.Fatalf("backslash escape captured %q", got)
	}
}

func TestNormalizeNegativeNumbers(t *testing.T) {
	neg := mustNormalize(t, "SELECT * FROM t WHERE x = -5")
	pos := mustNormalize(t, "SELECT * FROM t WHERE x = 5")
	if neg.Key == pos.Key {
		t.Fatal("negative and positive literal collapsed to one shape")
	}
	// The sign stays in the shape; the captured value is the magnitude.
	if neg.Args[0].Lit.AsInt() != 5 {
		t.Fatalf("captured %v, want 5", neg.Args[0].Lit)
	}
	// Shape must evaluate back to -5: parse and fold.
	stmt, err := Parse(neg.Key)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	cmp := sel.Where.(*BinaryExpr)
	if _, ok := cmp.R.(*UnaryExpr); !ok {
		t.Fatalf("expected unary negation around the slot, got %T", cmp.R)
	}
}

func TestNormalizeInListArity(t *testing.T) {
	two := mustNormalize(t, "SELECT * FROM t WHERE id IN (1, 2)")
	three := mustNormalize(t, "SELECT * FROM t WHERE id IN (1, 2, 3)")
	if two.Key == three.Key {
		t.Fatal("IN lists of different arity must produce different keys")
	}
	if len(two.Args) != 2 || len(three.Args) != 3 {
		t.Fatalf("captured %d and %d args", len(two.Args), len(three.Args))
	}
}

func TestNormalizeBypass(t *testing.T) {
	for _, sql := range []string{
		"CREATE TABLE t (id INT PRIMARY KEY)",
		"DROP TABLE t",
		"TRUNCATE TABLE t",
		"CREATE INDEX i ON t (a)",
		"BEGIN",
		"COMMIT",
		"ROLLBACK",
		"XA PREPARE 'xid'",
		"SET transaction_type = 'XA'",
		"SHOW TABLES",
		"DESCRIBE t",
		"SHOW SHARDING TABLE RULES",              // DistSQL
		"ALTER SHARDING TABLE RULE t (TYPE=MOD)", // DistSQL
		"'unlexable",
	} {
		if _, ok := Normalize(sql); ok {
			t.Errorf("Normalize(%q) should bypass", sql)
		}
	}
}

func TestNormalizeForUpdateFlag(t *testing.T) {
	n := mustNormalize(t, "SELECT * FROM t WHERE id = 1 FOR UPDATE")
	if !n.ForUpdate {
		t.Fatal("FOR UPDATE not detected")
	}
	if mustNormalize(t, "SELECT * FROM t WHERE id = 1").ForUpdate {
		t.Fatal("false FOR UPDATE")
	}
	if mustNormalize(t, "UPDATE t SET a = 1 WHERE id = 2").ForUpdate {
		t.Fatal("UPDATE statement misflagged as FOR UPDATE")
	}
}

func TestNormalizeBindArgs(t *testing.T) {
	// Mixed placeholders and literals: ? slots take caller args in order,
	// literal slots keep their captured values.
	n := mustNormalize(t, "SELECT * FROM t WHERE a = ? AND b = 5 AND c = ?")
	if len(n.Args) != 3 {
		t.Fatalf("want 3 slots, got %d", len(n.Args))
	}
	bound, err := n.BindArgs([]sqltypes.Value{sqltypes.NewString("x"), sqltypes.NewInt(9)})
	if err != nil {
		t.Fatal(err)
	}
	if bound[0].AsString() != "x" || bound[1].AsInt() != 5 || bound[2].AsInt() != 9 {
		t.Fatalf("bad binding %v", bound)
	}
	if _, err := n.BindArgs(nil); err == nil {
		t.Fatal("missing bind arguments not reported")
	}
}

func TestNormalizeQuotedIdentifiers(t *testing.T) {
	n := mustNormalize(t, "SELECT `select` FROM `from` WHERE `select` = 1")
	stmt, err := Parse(n.Key)
	if err != nil {
		t.Fatalf("quoted-identifier key %q does not re-parse: %v", n.Key, err)
	}
	if stmt.(*SelectStmt).From[0].Name != "from" {
		t.Fatalf("table identifier lost: %q", n.Key)
	}
}
