package storage

import (
	"fmt"
	"sync"

	"shardingsphere/internal/btree"
	"shardingsphere/internal/sqltypes"
)

// rowSlot is the stored state of one row. committed is the version every
// other transaction reads; uncommitted is the pending version private to
// the owning transaction (read-committed isolation). A pending delete sets
// deleted with owner identifying the deleter.
type rowSlot struct {
	id          int64
	pkKey       btree.Key    // cached primary-key key; immutable for the slot's life
	committed   sqltypes.Row // nil until the creating tx commits
	uncommitted sqltypes.Row // nil when no pending write
	owner       int64        // tx id with a pending write; 0 = none
	deleted     bool         // pending delete by owner
}

// visible returns the version of the row the transaction may read, or nil.
func (s *rowSlot) visible(txID int64) sqltypes.Row {
	if s.owner != 0 && s.owner == txID {
		if s.deleted {
			return nil
		}
		if s.uncommitted != nil {
			return s.uncommitted
		}
		return s.committed
	}
	return s.committed
}

// secondaryIndex is a non-unique ordered index: key → set of row ids.
type secondaryIndex struct {
	name string
	cols []int // schema positions
	tree *btree.Tree
}

func (ix *secondaryIndex) keyOf(row sqltypes.Row) btree.Key {
	key := make(btree.Key, len(ix.cols))
	for i, c := range ix.cols {
		key[i] = row[c]
	}
	return key
}

func (ix *secondaryIndex) add(row sqltypes.Row, rowID int64) {
	key := ix.keyOf(row)
	v, ok := ix.tree.Get(key)
	if !ok {
		ix.tree.Set(key, map[int64]struct{}{rowID: {}})
		return
	}
	v.(map[int64]struct{})[rowID] = struct{}{}
}

func (ix *secondaryIndex) remove(row sqltypes.Row, rowID int64) {
	key := ix.keyOf(row)
	v, ok := ix.tree.Get(key)
	if !ok {
		return
	}
	set := v.(map[int64]struct{})
	delete(set, rowID)
	if len(set) == 0 {
		ix.tree.Delete(key)
	}
}

// Table is one physical table: a schema, a slot store, a primary-key
// B-tree and any secondary indexes. All structural access is serialized by
// mu; long scans hold the read lock for their duration, which mirrors the
// latch behaviour of a single-node engine closely enough for the paper's
// workloads.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  sqltypes.Schema
	pkCols  []int
	autoCol int // schema position of AUTO_INCREMENT column, -1 if none
	notNull []bool

	autoInc int64
	rowSeq  int64
	slots   map[int64]*rowSlot
	pk      *btree.Tree // pk key → rowID
	indexes map[string]*secondaryIndex
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. The returned slice must not be mutated.
func (t *Table) Schema() sqltypes.Schema { return t.schema }

// PKColumns returns schema positions of the primary key columns.
func (t *Table) PKColumns() []int { return t.pkCols }

// AutoIncrementColumn returns the position of the auto-increment column or
// -1.
func (t *Table) AutoIncrementColumn() int { return t.autoCol }

// Len returns the number of committed rows (approximate under concurrent
// writers).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, s := range t.slots {
		if s.committed != nil && !(s.owner != 0 && s.deleted) {
			n++
		}
	}
	return n
}

// IndexHeight reports the height of the primary index; the engine's stats
// surface it so experiments can correlate data size with tree depth.
func (t *Table) IndexHeight() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pk.Height()
}

func (t *Table) pkKeyOf(row sqltypes.Row) (btree.Key, error) {
	key := make(btree.Key, len(t.pkCols))
	for i, c := range t.pkCols {
		if row[c].IsNull() {
			return nil, fmt.Errorf("%w: table %s", ErrNullPK, t.name)
		}
		key[i] = row[c]
	}
	return key, nil
}

// HasIndexOn reports whether a secondary index exists whose first column
// is the given schema position, returning its name.
func (t *Table) HasIndexOn(col int) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for name, ix := range t.indexes {
		if ix.cols[0] == col {
			return name, true
		}
	}
	return "", false
}

// ScanEntry is one visible row surfaced by a scan, carrying the row id the
// caller needs to update or delete it.
type ScanEntry struct {
	RowID int64
	Row   sqltypes.Row
}

// Scan visits every visible row in primary-key order until fn returns
// false.
func (t *Table) Scan(txID int64, fn func(ScanEntry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.pk.Ascend(func(_ btree.Key, v any) bool {
		slot := t.slots[v.(int64)]
		row := slot.visible(txID)
		if row == nil {
			return true
		}
		return fn(ScanEntry{RowID: slot.id, Row: row})
	})
}

// PKRange visits visible rows with lo <= pk <= hi in key order. Nil bounds
// are open.
func (t *Table) PKRange(txID int64, lo, hi btree.Key, fn func(ScanEntry) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.pk.AscendRange(lo, hi, func(_ btree.Key, v any) bool {
		slot := t.slots[v.(int64)]
		row := slot.visible(txID)
		if row == nil {
			return true
		}
		return fn(ScanEntry{RowID: slot.id, Row: row})
	})
}

// PKGet returns the visible row with the given primary key.
func (t *Table) PKGet(txID int64, key btree.Key) (ScanEntry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.pk.Get(key)
	if !ok {
		return ScanEntry{}, false
	}
	slot := t.slots[v.(int64)]
	row := slot.visible(txID)
	if row == nil {
		return ScanEntry{}, false
	}
	return ScanEntry{RowID: slot.id, Row: row}, true
}

// IndexRange visits visible rows whose index key is within [lo, hi] on the
// named secondary index. Because index entries may be stale relative to a
// row's visible version, callers must re-check their predicates — the query
// processor always does.
func (t *Table) IndexRange(txID int64, index string, lo, hi btree.Key, fn func(ScanEntry) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[index]
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrIndexNotFound, t.name, index)
	}
	ix.tree.AscendRange(lo, hi, func(_ btree.Key, v any) bool {
		for rowID := range v.(map[int64]struct{}) {
			slot, ok := t.slots[rowID]
			if !ok {
				continue
			}
			row := slot.visible(txID)
			if row == nil {
				continue
			}
			if !fn(ScanEntry{RowID: slot.id, Row: row}) {
				return false
			}
		}
		return true
	})
	return nil
}
