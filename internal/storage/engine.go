package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shardingsphere/internal/sqltypes"
)

// DefaultLockTimeout bounds lock waits; deadlocked transactions fail with
// ErrLockTimeout after this long.
const DefaultLockTimeout = 2 * time.Second

// TableSpec describes a table to create.
type TableSpec struct {
	Name          string
	Schema        sqltypes.Schema
	PrimaryKey    []string // column names; must be non-empty
	AutoIncrement string   // optional column name
	NotNull       []string // optional column names
}

// IndexSpec describes a secondary index to create.
type IndexSpec struct {
	Name    string
	Table   string
	Columns []string
}

// Engine is one independent database instance: the unit the paper calls a
// "data source". All methods are safe for concurrent use.
type Engine struct {
	name string

	mu     sync.RWMutex
	tables map[string]*Table
	closed bool

	txSeq       atomic.Int64
	locks       *lockManager
	lockTimeout time.Duration

	prepMu   sync.Mutex
	prepared map[string]*Tx
}

// NewEngine returns an empty engine named name.
func NewEngine(name string) *Engine {
	return &Engine{
		name:        name,
		tables:      map[string]*Table{},
		locks:       newLockManager(),
		lockTimeout: DefaultLockTimeout,
		prepared:    map[string]*Tx{},
	}
}

// Name returns the engine (data source) name.
func (e *Engine) Name() string { return e.name }

// SetLockTimeout overrides the lock-wait timeout; tests use short values.
func (e *Engine) SetLockTimeout(d time.Duration) { e.lockTimeout = d }

// CreateTable creates a table from the spec.
func (e *Engine) CreateTable(spec TableSpec) error {
	if len(spec.PrimaryKey) == 0 {
		return fmt.Errorf("storage: table %s needs a primary key", spec.Name)
	}
	t := &Table{
		name:    spec.Name,
		schema:  spec.Schema,
		autoCol: -1,
		notNull: make([]bool, len(spec.Schema)),
		slots:   map[int64]*rowSlot{},
		pk:      newTree(),
		indexes: map[string]*secondaryIndex{},
	}
	for _, col := range spec.PrimaryKey {
		i := spec.Schema.Index(col)
		if i < 0 {
			return fmt.Errorf("storage: pk column %q not in schema of %s", col, spec.Name)
		}
		t.pkCols = append(t.pkCols, i)
		t.notNull[i] = true
	}
	if spec.AutoIncrement != "" {
		i := spec.Schema.Index(spec.AutoIncrement)
		if i < 0 {
			return fmt.Errorf("storage: auto-increment column %q not in schema of %s", spec.AutoIncrement, spec.Name)
		}
		t.autoCol = i
		// Auto-increment values are assigned before NOT NULL checks run.
		t.notNull[i] = false
	}
	for _, col := range spec.NotNull {
		i := spec.Schema.Index(col)
		if i < 0 {
			return fmt.Errorf("storage: not-null column %q not in schema of %s", col, spec.Name)
		}
		t.notNull[i] = true
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	if _, exists := e.tables[spec.Name]; exists {
		return fmt.Errorf("%w: %s", ErrTableExists, spec.Name)
	}
	e.tables[spec.Name] = t
	return nil
}

// CreateIndex adds a secondary index over existing rows.
func (e *Engine) CreateIndex(spec IndexSpec) error {
	t, err := e.Table(spec.Table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.indexes[spec.Name]; exists {
		return fmt.Errorf("%w: %s.%s", ErrIndexExists, spec.Table, spec.Name)
	}
	ix := &secondaryIndex{name: spec.Name, tree: newTree()}
	for _, col := range spec.Columns {
		i := t.schema.Index(col)
		if i < 0 {
			return fmt.Errorf("storage: index column %q not in schema of %s", col, spec.Table)
		}
		ix.cols = append(ix.cols, i)
	}
	for _, slot := range t.slots {
		if slot.committed != nil {
			ix.add(slot.committed, slot.id)
		}
		if slot.uncommitted != nil {
			ix.add(slot.uncommitted, slot.id)
		}
	}
	t.indexes[spec.Name] = ix
	return nil
}

// DropTable removes a table.
func (e *Engine) DropTable(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	delete(e.tables, name)
	return nil
}

// Truncate removes all rows of a table, bypassing transactions (DDL-like,
// as in SQL TRUNCATE).
func (e *Engine) Truncate(name string) error {
	t, err := e.Table(name)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.slots = map[int64]*rowSlot{}
	t.pk = newTree()
	for _, ix := range t.indexes {
		ix.tree = newTree()
	}
	return nil
}

// Table returns the named table.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s (engine %s)", ErrTableNotFound, name, e.name)
	}
	return t, nil
}

// HasTable reports whether the table exists.
func (e *Engine) HasTable(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.tables[name]
	return ok
}

// TableNames returns the sorted table names.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Begin starts a transaction.
func (e *Engine) Begin() *Tx {
	return &Tx{
		id:     e.txSeq.Add(1),
		engine: e,
		writes: map[lockKey]*writeRecord{},
	}
}

// --- XA support (paper Section IV-B, Fig. 5(c)) ---

// Prepare moves the transaction into the prepared state under the given
// XID. A prepared transaction keeps its locks and pending writes until
// CommitPrepared or RollbackPrepared, surviving the loss of the
// coordinator's in-memory state.
func (e *Engine) Prepare(tx *Tx, xid string) error {
	e.prepMu.Lock()
	defer e.prepMu.Unlock()
	if _, dup := e.prepared[xid]; dup {
		return fmt.Errorf("%w: %s", ErrXIDExists, xid)
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.state != txActive {
		return ErrTxFinished
	}
	tx.state = txPrepared
	tx.xid = xid
	e.prepared[xid] = tx
	return nil
}

// CommitPrepared commits a prepared transaction. Committing an unknown XID
// is an error, letting the coordinator distinguish "already completed" from
// "never prepared" during recovery.
func (e *Engine) CommitPrepared(xid string) error {
	tx, err := e.takePrepared(xid)
	if err != nil {
		return err
	}
	tx.mu.Lock()
	tx.state = txCommitted
	tx.mu.Unlock()
	tx.apply(true)
	return nil
}

// RollbackPrepared rolls back a prepared transaction.
func (e *Engine) RollbackPrepared(xid string) error {
	tx, err := e.takePrepared(xid)
	if err != nil {
		return err
	}
	tx.mu.Lock()
	tx.state = txAborted
	tx.mu.Unlock()
	tx.apply(false)
	return nil
}

func (e *Engine) takePrepared(xid string) (*Tx, error) {
	e.prepMu.Lock()
	defer e.prepMu.Unlock()
	tx, ok := e.prepared[xid]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrXIDNotFound, xid)
	}
	delete(e.prepared, xid)
	return tx, nil
}

// RecoverPrepared lists the XIDs of in-doubt transactions, as XA RECOVER
// does; the transaction manager uses it after a coordinator restart.
func (e *Engine) RecoverPrepared() []string {
	e.prepMu.Lock()
	defer e.prepMu.Unlock()
	xids := make([]string, 0, len(e.prepared))
	for xid := range e.prepared {
		xids = append(xids, xid)
	}
	sort.Strings(xids)
	return xids
}

// Close marks the engine closed. Outstanding transactions may still finish.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
}

// Stats reports engine-level statistics used by experiments and governance.
type Stats struct {
	Tables    int
	Rows      int
	MaxHeight int
}

// Stats returns current statistics.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	tables := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock()
	st := Stats{Tables: len(tables)}
	for _, t := range tables {
		st.Rows += t.Len()
		if h := t.IndexHeight(); h > st.MaxHeight {
			st.MaxHeight = h
		}
	}
	return st
}
