package storage

import "shardingsphere/internal/btree"

// newTree is a local alias so table/engine code reads tersely.
func newTree() *btree.Tree { return btree.New() }
