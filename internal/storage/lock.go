package storage

import (
	"sync"
	"time"
)

// lockKey identifies one row lock: a table and a row id.
type lockKey struct {
	table *Table
	rowID int64
}

// waiter is one transaction queued for a lock; grant is closed when
// ownership transfers to it.
type waiter struct {
	txID  int64
	grant chan struct{}
}

// lockState is the current holder and FIFO wait queue of one row lock.
type lockState struct {
	owner   int64
	waiters []waiter
}

// lockManager grants exclusive row locks to transactions. Deadlocks are
// resolved by lock-wait timeout, the same pragmatic policy InnoDB defaults
// to; the kernel's execution engine additionally avoids connection-level
// deadlocks by atomic acquisition (paper Section VI-D).
type lockManager struct {
	mu    sync.Mutex
	locks map[lockKey]*lockState
}

func newLockManager() *lockManager {
	return &lockManager{locks: map[lockKey]*lockState{}}
}

// acquire blocks until the transaction holds the row lock, reentrantly.
// It fails with ErrLockTimeout after the timeout elapses.
func (lm *lockManager) acquire(tx *Tx, key lockKey, timeout time.Duration) error {
	lm.mu.Lock()
	st, held := lm.locks[key]
	if !held {
		lm.locks[key] = &lockState{owner: tx.id}
		lm.mu.Unlock()
		tx.noteLock(key)
		return nil
	}
	if st.owner == tx.id {
		lm.mu.Unlock()
		return nil
	}
	w := waiter{txID: tx.id, grant: make(chan struct{})}
	st.waiters = append(st.waiters, w)
	lm.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w.grant:
		tx.noteLock(key)
		return nil
	case <-timer.C:
		lm.mu.Lock()
		// The grant may have raced the timeout; if we own the lock now,
		// accept it.
		if st, ok := lm.locks[key]; ok {
			if st.owner == tx.id {
				lm.mu.Unlock()
				tx.noteLock(key)
				return nil
			}
			for i, cand := range st.waiters {
				if cand.txID == tx.id && cand.grant == w.grant {
					st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
					break
				}
			}
		}
		lm.mu.Unlock()
		return ErrLockTimeout
	}
}

// releaseAll releases every lock held by the transaction, transferring
// each to its first waiter if any.
func (lm *lockManager) releaseAll(keys []lockKey, txID int64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, key := range keys {
		st, ok := lm.locks[key]
		if !ok || st.owner != txID {
			continue
		}
		if len(st.waiters) == 0 {
			delete(lm.locks, key)
			continue
		}
		next := st.waiters[0]
		st.waiters = st.waiters[1:]
		st.owner = next.txID
		close(next.grant)
	}
}
