// Package storage implements the per-node storage engine that stands in
// for the paper's MySQL/PostgreSQL data sources (see DESIGN.md's
// substitution table). Each Engine is one independent "database instance":
// it owns tables with B-tree-backed primary and secondary indexes, provides
// local ACID transactions with row-level locking and read-committed
// visibility, and exposes the XA hooks (prepare / commit-prepared /
// rollback-prepared / recover) that the distributed transaction manager
// drives during two-phase commit (paper Section IV-B).
package storage

import "errors"

// Sentinel errors returned by the engine. Callers match them with
// errors.Is.
var (
	ErrTableExists   = errors.New("storage: table already exists")
	ErrTableNotFound = errors.New("storage: table not found")
	ErrDuplicateKey  = errors.New("storage: duplicate primary key")
	ErrLockTimeout   = errors.New("storage: lock wait timeout")
	ErrTxFinished    = errors.New("storage: transaction already finished")
	ErrTxPrepared    = errors.New("storage: transaction is prepared; use XA commit/rollback")
	ErrXIDNotFound   = errors.New("storage: prepared transaction not found")
	ErrXIDExists     = errors.New("storage: XID already prepared")
	ErrPKUpdate      = errors.New("storage: updating primary key columns is not supported")
	ErrColumnCount   = errors.New("storage: row length does not match schema")
	ErrNullPK        = errors.New("storage: primary key column must not be NULL")
	ErrIndexExists   = errors.New("storage: index already exists")
	ErrIndexNotFound = errors.New("storage: index not found")
	ErrEngineClosed  = errors.New("storage: engine closed")
	ErrNotNullColumn = errors.New("storage: NULL value in NOT NULL column")
)
