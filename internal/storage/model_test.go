package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"shardingsphere/internal/btree"
	"shardingsphere/internal/sqltypes"
)

// TestEngineAgainstModel drives the engine with random transactional
// operations and checks every committed state against a reference model:
// a plain map mutated only when the transaction commits. It exercises the
// insert/update/delete/rollback matrix, including re-insert after delete
// inside one transaction.
func TestEngineAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(20220612))
	e := NewEngine("model")
	if err := e.CreateTable(TableSpec{
		Name: "t",
		Schema: sqltypes.Schema{
			{Name: "id", Type: sqltypes.KindInt},
			{Name: "v", Type: sqltypes.KindInt},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Table("t")

	model := map[int64]int64{} // committed state
	const keySpace = 64

	for round := 0; round < 400; round++ {
		tx := e.Begin()
		pending := map[int64]*int64{} // nil = deleted, else value
		nOps := 1 + rng.Intn(6)
		for op := 0; op < nOps; op++ {
			key := int64(rng.Intn(keySpace))
			visible := func() (int64, bool) {
				if pv, touched := pending[key]; touched {
					if pv == nil {
						return 0, false
					}
					return *pv, true
				}
				v, ok := model[key]
				return v, ok
			}
			switch rng.Intn(3) {
			case 0: // insert
				v := rng.Int63n(1000)
				_, err := tx.Insert("t", sqltypes.Row{sqltypes.NewInt(key), sqltypes.NewInt(v)})
				if _, exists := visible(); exists {
					if err == nil {
						t.Fatalf("round %d: duplicate insert of %d accepted", round, key)
					}
				} else {
					if err != nil {
						t.Fatalf("round %d: insert %d: %v", round, key, err)
					}
					vv := v
					pending[key] = &vv
				}
			case 1: // update
				se, ok := tbl.PKGet(tx.ID(), btree.Key{sqltypes.NewInt(key)})
				_, modelOK := visible()
				if ok != modelOK {
					t.Fatalf("round %d: visibility of %d: engine %v model %v", round, key, ok, modelOK)
				}
				if !ok {
					continue
				}
				v := rng.Int63n(1000)
				updated, err := tx.Update("t", se.RowID, sqltypes.Row{sqltypes.NewInt(key), sqltypes.NewInt(v)})
				if err != nil || !updated {
					t.Fatalf("round %d: update %d: %v %v", round, key, updated, err)
				}
				vv := v
				pending[key] = &vv
			case 2: // delete
				se, ok := tbl.PKGet(tx.ID(), btree.Key{sqltypes.NewInt(key)})
				_, modelOK := visible()
				if ok != modelOK {
					t.Fatalf("round %d: visibility of %d: engine %v model %v", round, key, ok, modelOK)
				}
				if !ok {
					continue
				}
				deleted, err := tx.Delete("t", se.RowID)
				if err != nil || !deleted {
					t.Fatalf("round %d: delete %d: %v %v", round, key, deleted, err)
				}
				pending[key] = nil
			}
		}
		// Commit or roll back, then verify the committed state matches.
		if rng.Intn(2) == 0 {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			for k, pv := range pending {
				if pv == nil {
					delete(model, k)
				} else {
					model[k] = *pv
				}
			}
		} else {
			if err := tx.Rollback(); err != nil {
				t.Fatal(err)
			}
		}
		verifyModel(t, tbl, model, round)
	}
}

func verifyModel(t *testing.T, tbl *Table, model map[int64]int64, round int) {
	t.Helper()
	got := map[int64]int64{}
	prev := int64(-1)
	tbl.Scan(0, func(se ScanEntry) bool {
		k := se.Row[0].I
		if k <= prev {
			t.Fatalf("round %d: scan out of order: %d after %d", round, k, prev)
		}
		prev = k
		got[k] = se.Row[1].I
		return true
	})
	if len(got) != len(model) {
		t.Fatalf("round %d: engine has %d rows, model %d\nengine: %v\nmodel: %v",
			round, len(got), len(model), got, model)
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("round %d: key %d: engine %d model %d", round, k, got[k], v)
		}
	}
}

// TestConcurrentTransfersConserveSum runs the classic bank-transfer
// invariant: concurrent transactions move value between rows; the total
// must be conserved because every transfer commits or aborts atomically.
func TestConcurrentTransfersConserveSum(t *testing.T) {
	e := NewEngine("bank")
	if err := e.CreateTable(TableSpec{
		Name: "acct",
		Schema: sqltypes.Schema{
			{Name: "id", Type: sqltypes.KindInt},
			{Name: "bal", Type: sqltypes.KindInt},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	const accounts = 8
	const initial = 1000
	seedTx := e.Begin()
	for i := int64(0); i < accounts; i++ {
		if _, err := seedTx.Insert("acct", sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewInt(initial)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seedTx.Commit(); err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Table("acct")

	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 100; i++ {
				from := int64(rng.Intn(accounts))
				to := int64(rng.Intn(accounts))
				if from == to {
					continue
				}
				tx := e.Begin()
				fe, ok1 := tbl.PKGet(tx.ID(), btree.Key{sqltypes.NewInt(from)})
				te, ok2 := tbl.PKGet(tx.ID(), btree.Key{sqltypes.NewInt(to)})
				if !ok1 || !ok2 {
					tx.Rollback()
					done <- fmt.Errorf("accounts vanished")
					return
				}
				amount := int64(rng.Intn(50))
				// Lock, then re-read under the lock (SELECT FOR UPDATE),
				// then apply the decrement — the no-lost-update protocol.
				if ok, err := tx.Lock("acct", fe.RowID); err != nil || !ok {
					tx.Rollback() // lock timeout: abort cleanly
					continue
				}
				fe2, _ := tbl.PKGet(tx.ID(), btree.Key{sqltypes.NewInt(from)})
				f := fe2.Row.Clone()
				f[1] = sqltypes.NewInt(f[1].I - amount)
				if ok, err := tx.Update("acct", fe.RowID, f); err != nil || !ok {
					tx.Rollback()
					continue
				}
				// Same lock-then-reread dance for the receiving account.
				if ok, err := tx.Lock("acct", te.RowID); err != nil || !ok {
					tx.Rollback()
					continue
				}
				te2, _ := tbl.PKGet(tx.ID(), btree.Key{sqltypes.NewInt(to)})
				tt := te2.Row.Clone()
				tt[1] = sqltypes.NewInt(tt[1].I + amount)
				if ok, err := tx.Update("acct", te.RowID, tt); err != nil || !ok {
					tx.Rollback()
					continue
				}
				// Half the transfers roll back deliberately.
				if rng.Intn(2) == 0 {
					tx.Rollback()
				} else {
					tx.Commit()
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	total := int64(0)
	tbl.Scan(0, func(se ScanEntry) bool {
		total += se.Row[1].I
		return true
	})
	if total != accounts*initial {
		t.Fatalf("money not conserved: %d != %d", total, accounts*initial)
	}
}
