package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"shardingsphere/internal/btree"
	"shardingsphere/internal/sqltypes"
)

func userSpec() TableSpec {
	return TableSpec{
		Name: "t_user",
		Schema: sqltypes.Schema{
			{Name: "uid", Type: sqltypes.KindInt},
			{Name: "name", Type: sqltypes.KindString},
			{Name: "age", Type: sqltypes.KindInt},
		},
		PrimaryKey: []string{"uid"},
	}
}

func newUserEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine("ds0")
	if err := e.CreateTable(userSpec()); err != nil {
		t.Fatal(err)
	}
	return e
}

func row(uid int64, name string, age int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(uid), sqltypes.NewString(name), sqltypes.NewInt(age)}
}

func mustInsert(t *testing.T, tx *Tx, table string, r sqltypes.Row) {
	t.Helper()
	if _, err := tx.Insert(table, r); err != nil {
		t.Fatal(err)
	}
}

func scanAll(e *Engine, table string, txID int64) []sqltypes.Row {
	t, err := e.Table(table)
	if err != nil {
		return nil
	}
	var rows []sqltypes.Row
	t.Scan(txID, func(se ScanEntry) bool {
		rows = append(rows, se.Row)
		return true
	})
	return rows
}

func TestInsertCommitVisible(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "alice", 30))
	mustInsert(t, tx, "t_user", row(2, "bob", 25))

	// Before commit: invisible to others, visible to self.
	if got := scanAll(e, "t_user", 0); len(got) != 0 {
		t.Fatalf("uncommitted rows leaked: %v", got)
	}
	if got := scanAll(e, "t_user", tx.ID()); len(got) != 2 {
		t.Fatalf("own writes invisible: %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := scanAll(e, "t_user", 0)
	if len(got) != 2 || got[0][1].S != "alice" || got[1][1].S != "bob" {
		t.Fatalf("committed rows wrong: %v", got)
	}
}

func TestRollbackDiscards(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "alice", 30))
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(e, "t_user", 0); len(got) != 0 {
		t.Fatalf("rollback leaked rows: %v", got)
	}
	// PK slot must be reusable after rollback.
	tx2 := e.Begin()
	mustInsert(t, tx2, "t_user", row(1, "anna", 22))
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	got := scanAll(e, "t_user", 0)
	if len(got) != 1 || got[0][1].S != "anna" {
		t.Fatalf("reinsert after rollback: %v", got)
	}
}

func TestDuplicateKey(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "alice", 30))
	if _, err := tx.Insert("t_user", row(1, "dup", 1)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
	tx.Commit()
	tx2 := e.Begin()
	if _, err := tx2.Insert("t_user", row(1, "dup", 1)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey after commit, got %v", err)
	}
	tx2.Rollback()
}

func TestUpdateAndDelete(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "alice", 30))
	tx.Commit()

	tbl, _ := e.Table("t_user")
	tx2 := e.Begin()
	se, ok := tbl.PKGet(tx2.ID(), btree.Key{sqltypes.NewInt(1)})
	if !ok {
		t.Fatal("pk get miss")
	}
	updated := se.Row.Clone()
	updated[2] = sqltypes.NewInt(31)
	if ok, err := tx2.Update("t_user", se.RowID, updated); err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}
	// Other readers still see age 30 (read committed).
	if got := scanAll(e, "t_user", 0); got[0][2].I != 30 {
		t.Fatalf("dirty read: %v", got)
	}
	tx2.Commit()
	if got := scanAll(e, "t_user", 0); got[0][2].I != 31 {
		t.Fatalf("update lost: %v", got)
	}

	tx3 := e.Begin()
	se, _ = tbl.PKGet(tx3.ID(), btree.Key{sqltypes.NewInt(1)})
	if ok, err := tx3.Delete("t_user", se.RowID); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if got := scanAll(e, "t_user", tx3.ID()); len(got) != 0 {
		t.Fatalf("delete invisible to self: %v", got)
	}
	if got := scanAll(e, "t_user", 0); len(got) != 1 {
		t.Fatalf("delete visible before commit: %v", got)
	}
	tx3.Commit()
	if got := scanAll(e, "t_user", 0); len(got) != 0 {
		t.Fatalf("delete lost: %v", got)
	}
}

func TestUpdatePKRejected(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "alice", 30))
	tx.Commit()
	tbl, _ := e.Table("t_user")
	tx2 := e.Begin()
	se, _ := tbl.PKGet(tx2.ID(), btree.Key{sqltypes.NewInt(1)})
	bad := se.Row.Clone()
	bad[0] = sqltypes.NewInt(99)
	if _, err := tx2.Update("t_user", se.RowID, bad); !errors.Is(err, ErrPKUpdate) {
		t.Fatalf("want ErrPKUpdate, got %v", err)
	}
	tx2.Rollback()
}

func TestDeleteThenReinsertSameTx(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "alice", 30))
	tx.Commit()

	tbl, _ := e.Table("t_user")
	tx2 := e.Begin()
	se, _ := tbl.PKGet(tx2.ID(), btree.Key{sqltypes.NewInt(1)})
	if ok, _ := tx2.Delete("t_user", se.RowID); !ok {
		t.Fatal("delete failed")
	}
	// Sysbench's read-write transaction deletes a row then reinserts the
	// same id; this must succeed inside one transaction.
	mustInsert(t, tx2, "t_user", row(1, "alice2", 31))
	tx2.Commit()
	got := scanAll(e, "t_user", 0)
	if len(got) != 1 || got[0][1].S != "alice2" {
		t.Fatalf("reinsert same tx: %v", got)
	}
}

func TestInsertThenDeleteSameTx(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(7, "ghost", 1))
	tbl, _ := e.Table("t_user")
	se, ok := tbl.PKGet(tx.ID(), btree.Key{sqltypes.NewInt(7)})
	if !ok {
		t.Fatal("own insert invisible")
	}
	if ok, _ := tx.Delete("t_user", se.RowID); !ok {
		t.Fatal("delete of own insert failed")
	}
	tx.Commit()
	if got := scanAll(e, "t_user", 0); len(got) != 0 {
		t.Fatalf("phantom row: %v", got)
	}
	// PK must be free.
	tx2 := e.Begin()
	mustInsert(t, tx2, "t_user", row(7, "real", 2))
	tx2.Commit()
}

func TestAutoIncrement(t *testing.T) {
	e := NewEngine("ds0")
	spec := userSpec()
	spec.AutoIncrement = "uid"
	if err := e.CreateTable(spec); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	r1, err := tx.Insert("t_user", sqltypes.Row{sqltypes.Null, sqltypes.NewString("a"), sqltypes.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := tx.Insert("t_user", sqltypes.Row{sqltypes.Null, sqltypes.NewString("b"), sqltypes.NewInt(2)})
	if r1[0].I != 1 || r2[0].I != 2 {
		t.Fatalf("auto inc: %v %v", r1[0], r2[0])
	}
	// Explicit value bumps the sequence.
	tx.Insert("t_user", row(10, "c", 3))
	r4, _ := tx.Insert("t_user", sqltypes.Row{sqltypes.Null, sqltypes.NewString("d"), sqltypes.NewInt(4)})
	if r4[0].I != 11 {
		t.Fatalf("auto inc after explicit: %v", r4[0])
	}
	tx.Commit()
}

func TestNotNull(t *testing.T) {
	e := NewEngine("ds0")
	spec := userSpec()
	spec.NotNull = []string{"name"}
	if err := e.CreateTable(spec); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	_, err := tx.Insert("t_user", sqltypes.Row{sqltypes.NewInt(1), sqltypes.Null, sqltypes.NewInt(1)})
	if !errors.Is(err, ErrNotNullColumn) {
		t.Fatalf("want ErrNotNullColumn, got %v", err)
	}
	tx.Rollback()
}

func TestPKRangeAndGet(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	for i := int64(1); i <= 20; i++ {
		mustInsert(t, tx, "t_user", row(i, fmt.Sprintf("u%d", i), i))
	}
	tx.Commit()
	tbl, _ := e.Table("t_user")
	var got []int64
	tbl.PKRange(0, btree.Key{sqltypes.NewInt(5)}, btree.Key{sqltypes.NewInt(8)}, func(se ScanEntry) bool {
		got = append(got, se.Row[0].I)
		return true
	})
	if len(got) != 4 || got[0] != 5 || got[3] != 8 {
		t.Fatalf("pk range: %v", got)
	}
	if _, ok := tbl.PKGet(0, btree.Key{sqltypes.NewInt(100)}); ok {
		t.Fatal("phantom pk get")
	}
}

func TestSecondaryIndex(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	for i := int64(1); i <= 10; i++ {
		mustInsert(t, tx, "t_user", row(i, "x", i%3))
	}
	tx.Commit()
	if err := e.CreateIndex(IndexSpec{Name: "idx_age", Table: "t_user", Columns: []string{"age"}}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.Table("t_user")
	count := 0
	key := btree.Key{sqltypes.NewInt(1)}
	if err := tbl.IndexRange(0, "idx_age", key, key, func(se ScanEntry) bool {
		if se.Row[2].I != 1 {
			t.Fatalf("index returned wrong row: %v", se.Row)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 4 { // ages of 1..10 %3==1: 1,4,7,10
		t.Fatalf("index count: %d", count)
	}

	// Index follows updates.
	tx2 := e.Begin()
	se, _ := tbl.PKGet(tx2.ID(), btree.Key{sqltypes.NewInt(1)})
	up := se.Row.Clone()
	up[2] = sqltypes.NewInt(2)
	tx2.Update("t_user", se.RowID, up)
	tx2.Commit()
	count = 0
	tbl.IndexRange(0, "idx_age", key, key, func(se ScanEntry) bool { count++; return true })
	if count != 3 {
		t.Fatalf("index after update: %d", count)
	}

	// Index follows deletes.
	tx3 := e.Begin()
	se, _ = tbl.PKGet(tx3.ID(), btree.Key{sqltypes.NewInt(4)})
	tx3.Delete("t_user", se.RowID)
	tx3.Commit()
	count = 0
	tbl.IndexRange(0, "idx_age", key, key, func(se ScanEntry) bool { count++; return true })
	if count != 2 {
		t.Fatalf("index after delete: %d", count)
	}
}

func TestIndexRollbackCleansEntries(t *testing.T) {
	e := newUserEngine(t)
	if err := e.CreateIndex(IndexSpec{Name: "idx_age", Table: "t_user", Columns: []string{"age"}}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "a", 42))
	tx.Rollback()
	tbl, _ := e.Table("t_user")
	count := 0
	key := btree.Key{sqltypes.NewInt(42)}
	tbl.IndexRange(0, "idx_age", key, key, func(ScanEntry) bool { count++; return true })
	if count != 0 {
		t.Fatalf("rolled-back index entries: %d", count)
	}
}

func TestRowLockBlocksSecondWriter(t *testing.T) {
	e := newUserEngine(t)
	e.SetLockTimeout(100 * time.Millisecond)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "a", 1))
	tx.Commit()
	tbl, _ := e.Table("t_user")

	tx1 := e.Begin()
	se, _ := tbl.PKGet(tx1.ID(), btree.Key{sqltypes.NewInt(1)})
	up := se.Row.Clone()
	up[2] = sqltypes.NewInt(2)
	if ok, err := tx1.Update("t_user", se.RowID, up); !ok || err != nil {
		t.Fatal(err)
	}
	// Second writer times out while tx1 holds the lock.
	tx2 := e.Begin()
	up2 := se.Row.Clone()
	up2[2] = sqltypes.NewInt(3)
	if _, err := tx2.Update("t_user", se.RowID, up2); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	tx1.Commit()
	// Now it succeeds.
	if ok, err := tx2.Update("t_user", se.RowID, up2); !ok || err != nil {
		t.Fatalf("after release: %v %v", ok, err)
	}
	tx2.Commit()
	if got := scanAll(e, "t_user", 0); got[0][2].I != 3 {
		t.Fatalf("final: %v", got)
	}
}

func TestConcurrentIncrementsNoLostUpdates(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "ctr", 0))
	tx.Commit()
	tbl, _ := e.Table("t_user")

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					tx := e.Begin()
					se, ok := tbl.PKGet(tx.ID(), btree.Key{sqltypes.NewInt(1)})
					if !ok {
						tx.Rollback()
						errs <- errors.New("row vanished")
						return
					}
					up := se.Row.Clone()
					up[2] = sqltypes.NewInt(up[2].I + 1)
					okUpd, err := tx.Update("t_user", se.RowID, up)
					if err != nil || !okUpd {
						tx.Rollback()
						continue // lock timeout: retry
					}
					// Re-read under the lock: the increment must be based on
					// the latest committed value, so re-fetch and re-apply.
					se2, _ := tbl.PKGet(tx.ID(), btree.Key{sqltypes.NewInt(1)})
					up2 := se2.Row.Clone()
					tx.Update("t_user", se.RowID, up2)
					tx.Commit()
					break
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Note: this loop increments based on a read taken before the lock,
	// then re-reads under the lock; read-committed plus row locks make the
	// final value at most workers*perWorker. The strict assertion below is
	// on lock mutual exclusion: the counter must have moved and never
	// panicked or deadlocked.
	got := scanAll(e, "t_user", 0)
	if got[0][2].I <= 0 {
		t.Fatalf("counter did not move: %v", got)
	}
}

func TestXAPrepareCommit(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "a", 1))
	if err := e.Prepare(tx, "xid-1"); err != nil {
		t.Fatal(err)
	}
	// Prepared: still invisible, tx unusable, XID recoverable.
	if got := scanAll(e, "t_user", 0); len(got) != 0 {
		t.Fatalf("prepared writes leaked: %v", got)
	}
	if _, err := tx.Insert("t_user", row(2, "b", 2)); !errors.Is(err, ErrTxPrepared) {
		t.Fatalf("want ErrTxPrepared, got %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxPrepared) {
		t.Fatalf("direct commit of prepared tx must fail: %v", err)
	}
	if got := e.RecoverPrepared(); len(got) != 1 || got[0] != "xid-1" {
		t.Fatalf("recover: %v", got)
	}
	if err := e.CommitPrepared("xid-1"); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(e, "t_user", 0); len(got) != 1 {
		t.Fatalf("xa commit lost: %v", got)
	}
	if got := e.RecoverPrepared(); len(got) != 0 {
		t.Fatalf("xid lingers: %v", got)
	}
	if err := e.CommitPrepared("xid-1"); !errors.Is(err, ErrXIDNotFound) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestXARollback(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "a", 1))
	if err := e.Prepare(tx, "xid-rb"); err != nil {
		t.Fatal(err)
	}
	if err := e.RollbackPrepared("xid-rb"); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(e, "t_user", 0); len(got) != 0 {
		t.Fatalf("xa rollback leaked: %v", got)
	}
}

func TestXAPreparedHoldsLocks(t *testing.T) {
	e := newUserEngine(t)
	e.SetLockTimeout(50 * time.Millisecond)
	tx0 := e.Begin()
	mustInsert(t, tx0, "t_user", row(1, "a", 1))
	tx0.Commit()
	tbl, _ := e.Table("t_user")

	tx1 := e.Begin()
	se, _ := tbl.PKGet(tx1.ID(), btree.Key{sqltypes.NewInt(1)})
	up := se.Row.Clone()
	up[2] = sqltypes.NewInt(2)
	tx1.Update("t_user", se.RowID, up)
	if err := e.Prepare(tx1, "xid-lock"); err != nil {
		t.Fatal(err)
	}
	// A concurrent writer must still block on the prepared transaction.
	tx2 := e.Begin()
	if _, err := tx2.Update("t_user", se.RowID, up); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("prepared tx lost its locks: %v", err)
	}
	tx2.Rollback()
	e.CommitPrepared("xid-lock")
	tx3 := e.Begin()
	if ok, err := tx3.Update("t_user", se.RowID, up); !ok || err != nil {
		t.Fatalf("after xa commit: %v %v", ok, err)
	}
	tx3.Commit()
}

func TestDuplicateXID(t *testing.T) {
	e := newUserEngine(t)
	tx1 := e.Begin()
	mustInsert(t, tx1, "t_user", row(1, "a", 1))
	if err := e.Prepare(tx1, "same"); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin()
	mustInsert(t, tx2, "t_user", row(2, "b", 2))
	if err := e.Prepare(tx2, "same"); !errors.Is(err, ErrXIDExists) {
		t.Fatalf("want ErrXIDExists, got %v", err)
	}
	e.RollbackPrepared("same")
	tx2.Rollback()
}

func TestTruncateAndDrop(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	mustInsert(t, tx, "t_user", row(1, "a", 1))
	tx.Commit()
	if err := e.Truncate("t_user"); err != nil {
		t.Fatal(err)
	}
	if got := scanAll(e, "t_user", 0); len(got) != 0 {
		t.Fatalf("truncate: %v", got)
	}
	if err := e.DropTable("t_user"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropTable("t_user"); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	if e.HasTable("t_user") {
		t.Fatal("HasTable after drop")
	}
}

func TestCreateTableValidation(t *testing.T) {
	e := NewEngine("ds0")
	if err := e.CreateTable(TableSpec{Name: "x", Schema: sqltypes.Schema{{Name: "a"}}}); err == nil {
		t.Fatal("missing pk should fail")
	}
	spec := userSpec()
	if err := e.CreateTable(spec); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable(spec); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate table: %v", err)
	}
	bad := userSpec()
	bad.Name = "y"
	bad.PrimaryKey = []string{"missing"}
	if err := e.CreateTable(bad); err == nil {
		t.Fatal("bad pk column should fail")
	}
}

func TestTxFinishedErrors(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	tx.Commit()
	if _, err := tx.Insert("t_user", row(1, "a", 1)); !errors.Is(err, ErrTxFinished) {
		t.Fatalf("insert after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxFinished) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxFinished) {
		t.Fatalf("rollback after commit: %v", err)
	}
}

func TestStats(t *testing.T) {
	e := newUserEngine(t)
	tx := e.Begin()
	for i := int64(0); i < 100; i++ {
		mustInsert(t, tx, "t_user", row(i, "x", i))
	}
	tx.Commit()
	st := e.Stats()
	if st.Tables != 1 || st.Rows != 100 || st.MaxHeight < 1 {
		t.Fatalf("stats: %+v", st)
	}
}
