package storage

import (
	"fmt"
	"sync"

	"shardingsphere/internal/btree"
	"shardingsphere/internal/sqltypes"
)

// txState is the lifecycle state of a transaction.
type txState uint8

const (
	txActive txState = iota
	txPrepared
	txCommitted
	txAborted
)

// writeRecord remembers a transaction's first touch of a row so commit and
// rollback know whether the slot was created by this transaction.
type writeRecord struct {
	key      lockKey
	inserted bool
}

// Tx is one local transaction on an Engine. A Tx is used by a single
// session goroutine; the engine's internal structures handle cross-
// transaction concurrency.
type Tx struct {
	id     int64
	engine *Engine

	mu     sync.Mutex
	state  txState
	xid    string
	writes map[lockKey]*writeRecord
	order  []*writeRecord
	locked []lockKey
	// versionFloor gates nothing yet; reserved for snapshot upgrades.
}

// ID returns the transaction id (unique per engine).
func (tx *Tx) ID() int64 { return tx.id }

// noteLock records an acquired row lock for release at completion.
func (tx *Tx) noteLock(key lockKey) {
	tx.mu.Lock()
	tx.locked = append(tx.locked, key)
	tx.mu.Unlock()
}

func (tx *Tx) noteWrite(key lockKey, inserted bool) *writeRecord {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if rec, ok := tx.writes[key]; ok {
		return rec
	}
	rec := &writeRecord{key: key, inserted: inserted}
	tx.writes[key] = rec
	tx.order = append(tx.order, rec)
	return rec
}

func (tx *Tx) checkActive() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	switch tx.state {
	case txActive:
		return nil
	case txPrepared:
		return ErrTxPrepared
	default:
		return ErrTxFinished
	}
}

// Insert adds a row to the table. A NULL in the auto-increment column is
// replaced with the next sequence value; the inserted row is returned.
func (tx *Tx) Insert(table string, row sqltypes.Row) (sqltypes.Row, error) {
	if err := tx.checkActive(); err != nil {
		return nil, err
	}
	t, err := tx.engine.Table(table)
	if err != nil {
		return nil, err
	}
	if len(row) != len(t.schema) {
		return nil, fmt.Errorf("%w: table %s wants %d columns, got %d",
			ErrColumnCount, t.name, len(t.schema), len(row))
	}
	row = row.Clone()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.autoCol >= 0 && row[t.autoCol].IsNull() {
		t.autoInc++
		row[t.autoCol] = sqltypes.NewInt(t.autoInc)
	} else if t.autoCol >= 0 {
		if v := row[t.autoCol].AsInt(); v > t.autoInc {
			t.autoInc = v
		}
	}
	for i, nn := range t.notNull {
		if nn && row[i].IsNull() {
			return nil, fmt.Errorf("%w: %s.%s", ErrNotNullColumn, t.name, t.schema[i].Name)
		}
	}
	pkKey, err := t.pkKeyOf(row)
	if err != nil {
		return nil, err
	}
	if v, ok := t.pk.Get(pkKey); ok {
		slot := t.slots[v.(int64)]
		// Re-insert of a row this transaction deleted: revive it in place.
		if slot.owner == tx.id && slot.deleted {
			slot.deleted = false
			slot.uncommitted = row
			t.addVersionEntries(row, slot.committed, slot.id)
			return row, nil
		}
		return nil, fmt.Errorf("%w: table %s key %v", ErrDuplicateKey, t.name, btree.Key(pkKey))
	}
	t.rowSeq++
	slot := &rowSlot{id: t.rowSeq, pkKey: pkKey, uncommitted: row, owner: tx.id}
	t.slots[slot.id] = slot
	t.pk.Set(pkKey, slot.id)
	t.addVersionEntries(row, nil, slot.id)
	// The row is brand new, so the lock is uncontended; register it
	// directly rather than going through the wait queue.
	tx.engine.locks.mu.Lock()
	tx.engine.locks.locks[lockKey{t, slot.id}] = &lockState{owner: tx.id}
	tx.engine.locks.mu.Unlock()
	tx.noteLock(lockKey{t, slot.id})
	tx.noteWrite(lockKey{t, slot.id}, true)
	return row, nil
}

// Update replaces the visible row identified by rowID. It returns false if
// the row disappeared before the lock was granted (deleted by a committed
// concurrent transaction). Primary key columns must be unchanged.
func (tx *Tx) Update(table string, rowID int64, newRow sqltypes.Row) (bool, error) {
	if err := tx.checkActive(); err != nil {
		return false, err
	}
	t, err := tx.engine.Table(table)
	if err != nil {
		return false, err
	}
	if len(newRow) != len(t.schema) {
		return false, fmt.Errorf("%w: table %s wants %d columns, got %d",
			ErrColumnCount, t.name, len(t.schema), len(newRow))
	}
	key := lockKey{t, rowID}
	if err := tx.engine.locks.acquire(tx, key, tx.engine.lockTimeout); err != nil {
		return false, err
	}
	newRow = newRow.Clone()

	t.mu.Lock()
	defer t.mu.Unlock()
	slot, ok := t.slots[rowID]
	if !ok {
		return false, nil
	}
	cur := slot.visible(tx.id)
	if cur == nil {
		return false, nil
	}
	for _, c := range t.pkCols {
		if !sqltypes.Equal(cur[c], newRow[c]) {
			return false, fmt.Errorf("%w: %s.%s", ErrPKUpdate, t.name, t.schema[c].Name)
		}
	}
	for i, nn := range t.notNull {
		if nn && newRow[i].IsNull() {
			return false, fmt.Errorf("%w: %s.%s", ErrNotNullColumn, t.name, t.schema[i].Name)
		}
	}
	tx.noteWrite(key, false)
	if slot.owner == tx.id && slot.uncommitted != nil {
		t.removeVersionEntries(slot.uncommitted, slot.committed, rowID)
	}
	slot.owner = tx.id
	slot.deleted = false
	slot.uncommitted = newRow
	t.addVersionEntries(newRow, slot.committed, rowID)
	return true, nil
}

// Lock acquires the row's write lock without modifying it (SELECT ...
// FOR UPDATE). Re-reads after Lock see the latest committed version, so
// read-modify-write sequences built on it cannot lose updates. It returns
// false if the row vanished before the lock was granted.
func (tx *Tx) Lock(table string, rowID int64) (bool, error) {
	if err := tx.checkActive(); err != nil {
		return false, err
	}
	t, err := tx.engine.Table(table)
	if err != nil {
		return false, err
	}
	key := lockKey{t, rowID}
	if err := tx.engine.locks.acquire(tx, key, tx.engine.lockTimeout); err != nil {
		return false, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot, ok := t.slots[rowID]
	if !ok || slot.visible(tx.id) == nil {
		return false, nil
	}
	return true, nil
}

// Delete removes the visible row identified by rowID, returning false if
// the row was already gone.
func (tx *Tx) Delete(table string, rowID int64) (bool, error) {
	if err := tx.checkActive(); err != nil {
		return false, err
	}
	t, err := tx.engine.Table(table)
	if err != nil {
		return false, err
	}
	key := lockKey{t, rowID}
	if err := tx.engine.locks.acquire(tx, key, tx.engine.lockTimeout); err != nil {
		return false, err
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	slot, ok := t.slots[rowID]
	if !ok {
		return false, nil
	}
	if slot.visible(tx.id) == nil {
		return false, nil
	}
	tx.noteWrite(key, slot.owner == tx.id && slot.committed == nil)
	if slot.owner == tx.id && slot.uncommitted != nil {
		t.removeVersionEntries(slot.uncommitted, slot.committed, rowID)
	}
	slot.owner = tx.id
	slot.uncommitted = nil
	slot.deleted = true
	return true, nil
}

// Commit makes the transaction's writes durable and visible.
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	if tx.state != txActive {
		st := tx.state
		tx.mu.Unlock()
		if st == txPrepared {
			return ErrTxPrepared
		}
		return ErrTxFinished
	}
	tx.state = txCommitted
	tx.mu.Unlock()
	tx.apply(true)
	return nil
}

// Rollback discards the transaction's writes.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	if tx.state != txActive {
		st := tx.state
		tx.mu.Unlock()
		if st == txPrepared {
			return ErrTxPrepared
		}
		return ErrTxFinished
	}
	tx.state = txAborted
	tx.mu.Unlock()
	tx.apply(false)
	return nil
}

// apply finalizes every written slot and releases the row locks.
func (tx *Tx) apply(commit bool) {
	// Group records per table so each table latch is taken once.
	perTable := map[*Table][]*writeRecord{}
	for _, rec := range tx.order {
		perTable[rec.key.table] = append(perTable[rec.key.table], rec)
	}
	for t, recs := range perTable {
		t.mu.Lock()
		for _, rec := range recs {
			slot, ok := t.slots[rec.key.rowID]
			if !ok || slot.owner != tx.id {
				continue
			}
			if commit {
				t.commitSlot(slot, rec.inserted)
			} else {
				t.rollbackSlot(slot, rec.inserted)
			}
		}
		t.mu.Unlock()
	}
	tx.engine.locks.releaseAll(tx.locked, tx.id)
	tx.locked = nil
	tx.order = nil
	tx.writes = nil
}

// commitSlot promotes the pending version. Caller holds t.mu.
func (t *Table) commitSlot(slot *rowSlot, inserted bool) {
	switch {
	case slot.deleted:
		if slot.committed != nil {
			t.removeVersionEntries(slot.committed, nil, slot.id)
		}
		t.dropPKEntryFor(slot)
		delete(t.slots, slot.id)
	case slot.uncommitted != nil:
		if slot.committed != nil {
			t.removeVersionEntries(slot.committed, slot.uncommitted, slot.id)
		}
		slot.committed = slot.uncommitted
		slot.uncommitted = nil
		slot.owner = 0
	default:
		slot.owner = 0
	}
}

// rollbackSlot discards the pending version. Caller holds t.mu.
func (t *Table) rollbackSlot(slot *rowSlot, inserted bool) {
	if inserted {
		if slot.uncommitted != nil {
			t.removeVersionEntries(slot.uncommitted, nil, slot.id)
		}
		t.dropPKEntryFor(slot)
		delete(t.slots, slot.id)
		return
	}
	if slot.uncommitted != nil {
		t.removeVersionEntries(slot.uncommitted, slot.committed, slot.id)
	}
	slot.uncommitted = nil
	slot.deleted = false
	slot.owner = 0
}

// dropPKEntryFor removes the pk entry that points at the slot, using the
// key cached when the slot was created.
func (t *Table) dropPKEntryFor(slot *rowSlot) {
	if v, ok := t.pk.Get(slot.pkKey); ok && v.(int64) == slot.id {
		t.pk.Delete(slot.pkKey)
	}
}

// addVersionEntries adds secondary-index entries for row, skipping indexes
// where an existing version already holds the same key (the entry sets are
// shared between versions with equal keys).
func (t *Table) addVersionEntries(row, existing sqltypes.Row, rowID int64) {
	for _, ix := range t.indexes {
		if existing != nil && btree.CompareKeys(ix.keyOf(existing), ix.keyOf(row)) == 0 {
			continue
		}
		ix.add(row, rowID)
	}
}

// removeVersionEntries removes secondary-index entries for victim, keeping
// entries still needed by survivor.
func (t *Table) removeVersionEntries(victim, survivor sqltypes.Row, rowID int64) {
	for _, ix := range t.indexes {
		if survivor != nil && btree.CompareKeys(ix.keyOf(survivor), ix.keyOf(victim)) == 0 {
			continue
		}
		ix.remove(victim, rowID)
	}
}
