// Package sqltypes defines the value, row and schema types shared by every
// layer of the system: the storage engines, the per-node query processor,
// the sharding kernel, the mergers and the wire protocol.
//
// Values are a small concrete struct rather than interface{} so rows can be
// copied and compared without per-cell heap allocation, which matters on the
// hot path of the executor and the stream mergers.
package sqltypes

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds. They deliberately mirror the small set of
// SQL-92 types the paper's data sources need: integers, floating point,
// character data and NULL. Booleans appear only as expression results.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{Kind: KindInt, I: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, F: v} }

// NewString returns a character value.
func NewString(v string) Value { return Value{Kind: KindString, S: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	if v {
		return Value{Kind: KindBool, I: 1}
	}
	return Value{Kind: KindBool}
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Bool reports the truth value; NULL and zero values are false.
func (v Value) Bool() bool {
	switch v.Kind {
	case KindBool, KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// AsInt coerces the value to an integer, following the permissive numeric
// coercion of the MySQL family (strings parse their numeric prefix).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindString:
		n, _ := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		return n
	default:
		return 0
	}
}

// AsFloat coerces the value to a float64.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindString:
		f, _ := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f
	default:
		return 0
	}
}

// AsString renders the value as its SQL text form without quotes.
func (v Value) AsString() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return ""
	}
}

// SQLLiteral renders the value as a literal that can be embedded in a SQL
// statement, quoting and escaping strings.
func (v Value) SQLLiteral() string {
	if v.Kind == KindString {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.AsString()
}

// String implements fmt.Stringer for debugging.
func (v Value) String() string { return v.AsString() }

// numericKind reports whether the kind participates in numeric comparison.
func numericKind(k Kind) bool { return k == KindInt || k == KindFloat || k == KindBool }

// Compare orders two values. NULL sorts before everything (as in MySQL's
// ORDER BY). Numeric kinds compare numerically even across kinds; strings
// compare lexicographically; a numeric and a string compare numerically,
// matching the coercion used by the expression evaluator.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if a.Kind == KindString && b.Kind == KindString {
		return strings.Compare(a.S, b.S)
	}
	if numericKind(a.Kind) && numericKind(b.Kind) {
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		return compareFloat(a.AsFloat(), b.AsFloat())
	}
	// Mixed string/numeric: coerce to numbers, as the evaluator does.
	return compareFloat(a.AsFloat(), b.AsFloat())
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal under Compare, with the
// SQL caveat that NULL never equals anything, including NULL.
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Add returns a+b with numeric promotion (int+int stays int).
func Add(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		return NewInt(a.I + b.I)
	}
	return NewFloat(a.AsFloat() + b.AsFloat())
}

// Sub returns a-b with numeric promotion.
func Sub(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		return NewInt(a.I - b.I)
	}
	return NewFloat(a.AsFloat() - b.AsFloat())
}

// Mul returns a*b with numeric promotion.
func Mul(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		return NewInt(a.I * b.I)
	}
	return NewFloat(a.AsFloat() * b.AsFloat())
}

// Div returns a/b; division always yields a float (as in PostgreSQL's
// float division and MySQL's "/" operator) and NULL on division by zero.
func Div(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	d := b.AsFloat()
	if d == 0 {
		return Null
	}
	return NewFloat(a.AsFloat() / d)
}

// Mod returns a%b on integers and NULL on division by zero.
func Mod(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	d := b.AsInt()
	if d == 0 {
		return Null
	}
	return NewInt(a.AsInt() % d)
}
