package sqltypes

import (
	"fmt"
	"strings"
)

// Row is one tuple of values.
type Row []Value

// Clone returns a deep copy of the row (Values are value types, so a slice
// copy suffices).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// String renders the row for debugging, e.g. "(1, alice, 3.5)".
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.AsString())
	}
	b.WriteByte(')')
	return b.String()
}

// Column describes one column of a table or result set.
type Column struct {
	Name string
	Type Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// Names returns the column names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s))
	for i, c := range s {
		names[i] = c.Name
	}
	return names
}

// Index returns the position of the named column (case-insensitive), or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// MustIndex is Index but panics on a missing column; used by internal code
// paths where the column was already validated.
func (s Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("sqltypes: column %q not in schema %v", name, s.Names()))
	}
	return i
}
