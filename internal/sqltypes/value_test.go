package sqltypes

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind != KindNull {
		t.Fatal("zero value must be NULL")
	}
	if v := NewInt(42); v.AsInt() != 42 || v.AsFloat() != 42 || v.AsString() != "42" {
		t.Fatalf("int value: %+v", v)
	}
	if v := NewFloat(2.5); v.AsFloat() != 2.5 || v.AsInt() != 2 {
		t.Fatalf("float value: %+v", v)
	}
	if v := NewString("7"); v.AsInt() != 7 || v.AsString() != "7" {
		t.Fatalf("string coercion: %+v", v)
	}
	if v := NewString(" 3.5 "); v.AsFloat() != 3.5 {
		t.Fatalf("string float coercion: %+v", v)
	}
	if v := NewBool(true); !v.Bool() || v.AsInt() != 1 {
		t.Fatalf("bool: %+v", v)
	}
	if NewBool(false).Bool() {
		t.Fatal("false is true")
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("it's").SQLLiteral(); got != "'it''s'" {
		t.Fatalf("literal escaping: %s", got)
	}
	if got := Null.SQLLiteral(); got != "NULL" {
		t.Fatalf("null literal: %s", got)
	}
	if got := NewInt(-3).SQLLiteral(); got != "-3" {
		t.Fatalf("int literal: %s", got)
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewString("a"), NewString("b"), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewString("10"), NewInt(9), 1}, // mixed → numeric
		{NewBool(true), NewInt(1), 0},
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEqualNullNeverEqual(t *testing.T) {
	if Equal(Null, Null) || Equal(Null, NewInt(0)) {
		t.Fatal("NULL must not equal anything")
	}
	if !Equal(NewInt(5), NewFloat(5.0)) {
		t.Fatal("cross-kind numeric equality")
	}
}

func TestArithmetic(t *testing.T) {
	if v := Add(NewInt(2), NewInt(3)); v.Kind != KindInt || v.I != 5 {
		t.Fatalf("int add: %+v", v)
	}
	if v := Add(NewInt(2), NewFloat(0.5)); v.Kind != KindFloat || v.F != 2.5 {
		t.Fatalf("promoted add: %+v", v)
	}
	if v := Sub(NewInt(2), NewInt(3)); v.I != -1 {
		t.Fatalf("sub: %+v", v)
	}
	if v := Mul(NewInt(4), NewInt(3)); v.I != 12 {
		t.Fatalf("mul: %+v", v)
	}
	if v := Div(NewInt(7), NewInt(2)); v.Kind != KindFloat || v.F != 3.5 {
		t.Fatalf("div: %+v", v)
	}
	if !Div(NewInt(1), NewInt(0)).IsNull() {
		t.Fatal("div by zero must be NULL")
	}
	if v := Mod(NewInt(7), NewInt(3)); v.I != 1 {
		t.Fatalf("mod: %+v", v)
	}
	if !Mod(NewInt(1), NewInt(0)).IsNull() {
		t.Fatal("mod by zero must be NULL")
	}
	// NULL propagates.
	for _, v := range []Value{Add(Null, NewInt(1)), Sub(NewInt(1), Null), Mul(Null, Null), Div(Null, NewInt(1))} {
		if !v.IsNull() {
			t.Fatalf("NULL propagation: %+v", v)
		}
	}
}

// randomValue generates arbitrary values for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(2000) - 1000))
	case 2:
		return NewFloat(float64(r.Intn(2000)-1000) / 4)
	default:
		letters := []byte("abcdxyz")
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return NewString(string(b))
	}
}

// Generate implements quick.Generator.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomValue(r))
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b Value) bool {
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareIsReflexive(t *testing.T) {
	f := func(a Value) bool {
		return Compare(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareIsTransitiveOnSamples(t *testing.T) {
	f := func(a, b, c Value) bool {
		// Sort the triple by Compare, then verify pairwise order holds.
		vals := []Value{a, b, c}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if Compare(vals[i], vals[j]) > 0 {
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
		return Compare(vals[0], vals[1]) <= 0 &&
			Compare(vals[1], vals[2]) <= 0 &&
			Compare(vals[0], vals[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommutes(t *testing.T) {
	f := func(a, b Value) bool {
		x, y := Add(a, b), Add(b, a)
		if x.IsNull() != y.IsNull() {
			return false
		}
		if x.IsNull() {
			return true
		}
		return Compare(x, y) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].I != 1 {
		t.Fatal("clone aliases source")
	}
	if r.String() != "(1, x)" {
		t.Fatalf("row string: %s", r.String())
	}
}

func TestSchemaIndex(t *testing.T) {
	s := Schema{{Name: "Uid"}, {Name: "name"}}
	if s.Index("uid") != 0 || s.Index("NAME") != 1 || s.Index("zzz") != -1 {
		t.Fatalf("schema index: %d %d %d", s.Index("uid"), s.Index("NAME"), s.Index("zzz"))
	}
	if got := s.Names(); got[0] != "Uid" || len(got) != 2 {
		t.Fatalf("names: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex should panic on missing column")
		}
	}()
	s.MustIndex("zzz")
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "VARCHAR", KindBool: "BOOLEAN",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %s", k, k.String())
		}
	}
}
