package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"shardingsphere/internal/resource"
	"shardingsphere/internal/sharding"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/storage"
	"shardingsphere/internal/transaction"
)

// newKernel builds a kernel over nSources embedded engines with t_user and
// t_order auto-sharded (MOD on uid, shards = 2×sources) and bound.
func newKernel(t *testing.T, nSources, shards int, features ...Feature) *Kernel {
	t.Helper()
	rules := sharding.NewRuleSet()
	sources := map[string]*resource.DataSource{}
	var names []string
	for i := 0; i < nSources; i++ {
		name := fmt.Sprintf("ds%d", i)
		names = append(names, name)
		sources[name] = resource.NewEmbedded(storage.NewEngine(name), nil)
	}
	for _, table := range []string{"t_user", "t_order"} {
		rule, err := sharding.BuildAutoRule(sharding.AutoTableSpec{
			LogicTable:     table,
			Resources:      names,
			ShardingColumn: "uid",
			AlgorithmType:  "MOD",
			ShardingCount:  shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		rules.AddRule(rule)
	}
	if err := rules.AddBindingGroup("t_user", "t_order"); err != nil {
		t.Fatal(err)
	}
	k, err := New(Config{Rules: rules, Sources: sources, MaxCon: 4, Features: features})
	if err != nil {
		t.Fatal(err)
	}
	sess := k.NewSession()
	mustExec(t, sess, "CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(64), age INT)")
	mustExec(t, sess, "CREATE TABLE t_order (oid INT PRIMARY KEY, uid INT, amount INT)")
	return k
}

func mustExec(t *testing.T, s *Session, sql string, args ...sqltypes.Value) resource.ExecResult {
	t.Helper()
	r, err := s.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func mustQuery(t *testing.T, s *Session, sql string, args ...sqltypes.Value) []sqltypes.Row {
	t.Helper()
	rs, err := s.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	rows, err := resource.ReadAll(rs)
	if err != nil {
		t.Fatalf("ReadAll(%q): %v", sql, err)
	}
	return rows
}

func seed(t *testing.T, s *Session, users int) {
	t.Helper()
	for i := 1; i <= users; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t_user (uid, name, age) VALUES (%d, 'user%d', %d)", i, i, 20+i%10))
		mustExec(t, s, fmt.Sprintf("INSERT INTO t_order (oid, uid, amount) VALUES (%d, %d, %d)", 1000+i, i, i*10))
	}
}

func TestEndToEndCRUD(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 10)

	rows := mustQuery(t, s, "SELECT name FROM t_user WHERE uid = 7")
	if len(rows) != 1 || rows[0][0].S != "user7" {
		t.Fatalf("point select: %v", rows)
	}
	rows = mustQuery(t, s, "SELECT COUNT(*) FROM t_user")
	if rows[0][0].I != 10 {
		t.Fatalf("count: %v", rows)
	}
	if r := mustExec(t, s, "UPDATE t_user SET age = 99 WHERE uid IN (1, 2, 3)"); r.Affected != 3 {
		t.Fatalf("update affected: %d", r.Affected)
	}
	rows = mustQuery(t, s, "SELECT COUNT(*) FROM t_user WHERE age = 99")
	if rows[0][0].I != 3 {
		t.Fatalf("after update: %v", rows)
	}
	if r := mustExec(t, s, "DELETE FROM t_user WHERE uid = 1"); r.Affected != 1 {
		t.Fatalf("delete affected: %d", r.Affected)
	}
	rows = mustQuery(t, s, "SELECT COUNT(*) FROM t_user")
	if rows[0][0].I != 9 {
		t.Fatalf("after delete: %v", rows)
	}
}

func TestOrderByAcrossShards(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 20)
	rows := mustQuery(t, s, "SELECT uid FROM t_user ORDER BY uid DESC LIMIT 5")
	if len(rows) != 5 || rows[0][0].I != 20 || rows[4][0].I != 16 {
		t.Fatalf("order/limit: %v", rows)
	}
	// Derived order column stripped from output.
	rows = mustQuery(t, s, "SELECT name FROM t_user ORDER BY uid LIMIT 3")
	if len(rows) != 3 || len(rows[0]) != 1 || rows[0][0].S != "user1" {
		t.Fatalf("derived strip: %v", rows)
	}
}

func TestPaginationAcrossShards(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 20)
	rows := mustQuery(t, s, "SELECT uid FROM t_user ORDER BY uid LIMIT 5, 5")
	if len(rows) != 5 || rows[0][0].I != 6 || rows[4][0].I != 10 {
		t.Fatalf("pagination: %v", rows)
	}
}

func TestAggregatesAcrossShards(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 10)
	rows := mustQuery(t, s, "SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) FROM t_order")
	r := rows[0]
	if r[0].I != 10 || r[1].I != 550 || r[2].I != 10 || r[3].I != 100 {
		t.Fatalf("aggregates: %v", r)
	}
	if avg := r[4].AsFloat(); avg != 55 {
		t.Fatalf("avg: %v", avg)
	}
	if len(r) != 5 {
		t.Fatalf("derived not stripped: %v", r)
	}
}

func TestGroupByAcrossShards(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 20)
	rows := mustQuery(t, s, "SELECT age, COUNT(*) FROM t_user GROUP BY age ORDER BY age")
	total := int64(0)
	prev := int64(-1)
	for _, r := range rows {
		if r[0].I <= prev {
			t.Fatalf("group order: %v", rows)
		}
		prev = r[0].I
		total += r[1].I
	}
	if total != 20 {
		t.Fatalf("group total: %d (%v)", total, rows)
	}
}

func TestBindingJoinAcrossShards(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 10)
	rows := mustQuery(t, s, `SELECT u.name, o.amount FROM t_user u JOIN t_order o ON u.uid = o.uid WHERE u.uid IN (3, 4) ORDER BY o.amount`)
	if len(rows) != 2 || rows[0][1].I != 30 || rows[1][1].I != 40 {
		t.Fatalf("binding join: %v", rows)
	}
}

func TestInsertMultiRowSplits(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	if r := mustExec(t, s, "INSERT INTO t_user (uid, name, age) VALUES (1, 'a', 1), (2, 'b', 2), (3, 'c', 3), (4, 'd', 4)"); r.Affected != 4 {
		t.Fatalf("batched insert affected: %d", r.Affected)
	}
	rows := mustQuery(t, s, "SELECT COUNT(*) FROM t_user")
	if rows[0][0].I != 4 {
		t.Fatalf("after batch: %v", rows)
	}
}

func TestShowTablesAndDescribe(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	rows := mustQuery(t, s, "SHOW TABLES")
	if len(rows) != 2 {
		t.Fatalf("show tables: %v", rows)
	}
	rows = mustQuery(t, s, "DESCRIBE t_user")
	if len(rows) != 3 || rows[0][0].S != "uid" || rows[0][2].S != "PRI" {
		t.Fatalf("describe: %v", rows)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	rows := mustQuery(t, s, "SELECT 1 + 1")
	if rows[0][0].I != 2 {
		t.Fatalf("select without from: %v", rows)
	}
}

func TestPlaceholdersEndToEnd(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	mustExec(t, s, "INSERT INTO t_user (uid, name, age) VALUES (?, ?, ?)",
		sqltypes.NewInt(5), sqltypes.NewString("eve"), sqltypes.NewInt(30))
	rows := mustQuery(t, s, "SELECT name FROM t_user WHERE uid = ?", sqltypes.NewInt(5))
	if len(rows) != 1 || rows[0][0].S != "eve" {
		t.Fatalf("placeholders: %v", rows)
	}
}

func txTest(t *testing.T, typ transaction.Type) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 4)
	s.SetTransactionType(typ)

	// Commit path.
	mustExec(t, s, "BEGIN")
	if !s.InTransaction() {
		t.Fatal("not in tx")
	}
	mustExec(t, s, "UPDATE t_user SET age = 77 WHERE uid IN (1, 2, 3, 4)") // spans both sources
	mustExec(t, s, "COMMIT")
	rows := mustQuery(t, s, "SELECT COUNT(*) FROM t_user WHERE age = 77")
	if rows[0][0].I != 4 {
		t.Fatalf("%v commit: %v", typ, rows)
	}

	// Rollback path.
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE t_user SET age = 11 WHERE uid IN (1, 2, 3, 4)")
	mustExec(t, s, "ROLLBACK")
	rows = mustQuery(t, s, "SELECT COUNT(*) FROM t_user WHERE age = 77")
	if rows[0][0].I != 4 {
		t.Fatalf("%v rollback: %v", typ, rows)
	}
}

func TestLocalTransactionEndToEnd(t *testing.T) { txTest(t, transaction.Local) }
func TestXATransactionEndToEnd(t *testing.T)    { txTest(t, transaction.XA) }
func TestBaseTransactionEndToEnd(t *testing.T)  { txTest(t, transaction.Base) }

func TestTransactionIsolationAcrossSessions(t *testing.T) {
	k := newKernel(t, 2, 4)
	s1 := k.NewSession()
	s2 := k.NewSession()
	seed(t, s1, 4)
	s1.SetTransactionType(transaction.XA)
	mustExec(t, s1, "BEGIN")
	mustExec(t, s1, "UPDATE t_user SET age = 50 WHERE uid = 1")
	rows := mustQuery(t, s2, "SELECT age FROM t_user WHERE uid = 1")
	if rows[0][0].I == 50 {
		t.Fatal("dirty read across sessions")
	}
	mustExec(t, s1, "COMMIT")
	rows = mustQuery(t, s2, "SELECT age FROM t_user WHERE uid = 1")
	if rows[0][0].I != 50 {
		t.Fatalf("commit invisible: %v", rows)
	}
}

func TestSetVariableTransactionType(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	mustExec(t, s, "SET transaction_type = 'XA'")
	if s.TransactionType() != transaction.XA {
		t.Fatalf("type: %v", s.TransactionType())
	}
	if _, err := s.Exec("SET transaction_type = 'NOPE'"); err == nil {
		t.Fatal("bad type accepted")
	}
}

func TestBeginTwiceFails(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	mustExec(t, s, "BEGIN")
	if _, err := s.Exec("BEGIN"); !errors.Is(err, ErrInTransaction) {
		t.Fatalf("nested begin: %v", err)
	}
	mustExec(t, s, "ROLLBACK")
}

func TestSessionCloseRollsBack(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 2)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE t_user SET age = 1 WHERE uid = 1")
	s.Close()
	s2 := k.NewSession()
	rows := mustQuery(t, s2, "SELECT age FROM t_user WHERE uid = 1")
	if rows[0][0].I == 1 {
		t.Fatal("close did not roll back")
	}
}

func TestTableMetaService(t *testing.T) {
	k := newKernel(t, 2, 4)
	pk, cols, err := k.TableMeta("ds0", "t_user_0")
	if err != nil {
		t.Fatal(err)
	}
	if len(pk) != 1 || pk[0] != "uid" || len(cols) != 3 {
		t.Fatalf("meta: %v %v", pk, cols)
	}
	// Cached second call.
	pk2, _, _ := k.TableMeta("ds0", "t_user_0")
	if pk2[0] != "uid" {
		t.Fatal("cache broken")
	}
}

func TestUnshardedTableOnDefaultSource(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	mustExec(t, s, "CREATE TABLE plain (id INT PRIMARY KEY, v VARCHAR(10))")
	mustExec(t, s, "INSERT INTO plain VALUES (1, 'x')")
	rows := mustQuery(t, s, "SELECT v FROM plain WHERE id = 1")
	if rows[0][0].S != "x" {
		t.Fatalf("unsharded: %v", rows)
	}
	// It lives only on the default source.
	src, _ := k.Executor().Source("ds1")
	conn, _ := src.Acquire()
	defer conn.Release()
	if _, err := conn.Query(context.Background(), "SELECT * FROM plain"); err == nil {
		t.Fatal("plain table leaked to ds1")
	}
}

// gateFeature blocks one source for the circuit-breaker test.
type gateFeature struct{ blocked string }

func (g gateFeature) Name() string         { return "test-gate" }
func (g gateFeature) Allow(ds string) bool { return ds != g.blocked }

func TestSourceGateBlocksExecution(t *testing.T) {
	k := newKernel(t, 2, 4)
	k.AddGate(gateFeature{blocked: "ds1"})
	s := k.NewSession()
	// uid=1 routes to shard 1 on ds1 → blocked.
	_, err := s.Exec("INSERT INTO t_user (uid, name, age) VALUES (1, 'a', 1)")
	if !errors.Is(err, ErrSourceDown) {
		t.Fatalf("gate: %v", err)
	}
	// uid=2 routes to ds0 → allowed.
	mustExec(t, s, "INSERT INTO t_user (uid, name, age) VALUES (2, 'b', 2)")
}

func TestDistinctAcrossShards(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 20)
	rows := mustQuery(t, s, "SELECT DISTINCT age FROM t_user")
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r[0].I] {
			t.Fatalf("distinct failed: %v", rows)
		}
		seen[r[0].I] = true
	}
}

func TestGeneratedKeyFillsInsert(t *testing.T) {
	k := newKernel(t, 2, 4)
	rule, _ := k.Rules().Rule("t_order")
	gen, err := sharding.NewSnowflake(3)
	if err != nil {
		t.Fatal(err)
	}
	rule.KeyGenColumn = "oid"
	rule.KeyGen = gen
	s := k.NewSession()

	// INSERT without the key column: the kernel generates one.
	res := mustExec(t, s, "INSERT INTO t_order (uid, amount) VALUES (5, 100)")
	if res.LastInsertID == 0 {
		t.Fatal("no generated key reported")
	}
	rows := mustQuery(t, s, "SELECT oid FROM t_order WHERE uid = 5")
	if len(rows) != 1 || rows[0][0].I != res.LastInsertID {
		t.Fatalf("generated key mismatch: %v vs %d", rows, res.LastInsertID)
	}

	// Explicit key columns pass through untouched.
	res = mustExec(t, s, "INSERT INTO t_order (oid, uid, amount) VALUES (42, 6, 1)")
	if res.LastInsertID != 0 {
		t.Fatalf("explicit key must not generate: %d", res.LastInsertID)
	}

	// Multi-row inserts get distinct keys and split across shards.
	res = mustExec(t, s, "INSERT INTO t_order (uid, amount) VALUES (1, 1), (2, 2), (3, 3)")
	if res.Affected != 3 {
		t.Fatalf("affected: %d", res.Affected)
	}
	rows = mustQuery(t, s, "SELECT COUNT(DISTINCT oid) FROM t_order")
	if rows[0][0].I != 5 {
		t.Fatalf("distinct keys: %v", rows)
	}
}

func TestCartesianJoinEndToEnd(t *testing.T) {
	// Without a binding group the join must go cartesian and still return
	// exactly the right rows.
	rules := sharding.NewRuleSet()
	sources := map[string]*resource.DataSource{}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("ds%d", i)
		sources[name] = resource.NewEmbedded(storage.NewEngine(name), nil)
	}
	for _, table := range []string{"t_a", "t_b"} {
		rule, err := sharding.BuildAutoRule(sharding.AutoTableSpec{
			LogicTable: table, Resources: []string{"ds0", "ds1"},
			ShardingColumn: "uid", AlgorithmType: "MOD", ShardingCount: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		rules.AddRule(rule)
	}
	k, err := New(Config{Rules: rules, Sources: sources, MaxCon: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := k.NewSession()
	mustExec(t, s, "CREATE TABLE t_a (uid INT PRIMARY KEY, v INT)")
	mustExec(t, s, "CREATE TABLE t_b (uid INT PRIMARY KEY, w INT)")
	for i := 0; i < 12; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t_a (uid, v) VALUES (%d, %d)", i, i*10))
		mustExec(t, s, fmt.Sprintf("INSERT INTO t_b (uid, w) VALUES (%d, %d)", i, i*100))
	}
	rows := mustQuery(t, s, "SELECT a.v, b.w FROM t_a a JOIN t_b b ON a.uid = b.uid WHERE a.uid IN (3, 7) ORDER BY a.v")
	if len(rows) != 2 || rows[0][0].I != 30 || rows[0][1].I != 300 || rows[1][0].I != 70 {
		t.Fatalf("cartesian join rows: %v", rows)
	}
	// Count matches even on a full-table cartesian join.
	rows = mustQuery(t, s, "SELECT COUNT(*) FROM t_a a JOIN t_b b ON a.uid = b.uid")
	if rows[0][0].I != 12 {
		t.Fatalf("cartesian full join count: %v", rows)
	}
}

func TestHintRoutingEndToEnd(t *testing.T) {
	// A table with no sharding column in SQL routes by the session hint.
	hintAlgo, err := sharding.NewHintInline(map[string]string{"algorithm-expression": "t_h_${value % 2}"})
	if err != nil {
		t.Fatal(err)
	}
	rules := sharding.NewRuleSet()
	rules.AddRule(&sharding.TableRule{
		LogicTable: "t_h",
		Auto:       true,
		DataNodes: []sharding.DataNode{
			{DataSource: "ds0", Table: "t_h_0"}, {DataSource: "ds1", Table: "t_h_1"},
		},
		AutoStrategy: &sharding.Strategy{Hint: hintAlgo},
	})
	sources := map[string]*resource.DataSource{}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("ds%d", i)
		sources[name] = resource.NewEmbedded(storage.NewEngine(name), nil)
	}
	k, err := New(Config{Rules: rules, Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	s := k.NewSession()
	mustExec(t, s, "CREATE TABLE t_h (id INT PRIMARY KEY, v INT)")
	one := sqltypes.NewInt(1)
	s.SetHint(&one)
	mustExec(t, s, "INSERT INTO t_h (id, v) VALUES (10, 1)")
	// The row landed only on the hinted shard.
	src, _ := k.Executor().Source("ds1")
	conn, _ := src.Acquire()
	rs, err := conn.Query(context.Background(), "SELECT COUNT(*) FROM t_h_1")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := resource.ReadAll(rs)
	conn.Release()
	if rows[0][0].I != 1 {
		t.Fatalf("hinted insert missed: %v", rows)
	}
	// Reads with the hint stay on one shard; clearing it broadcasts.
	got := mustQuery(t, s, "SELECT COUNT(*) FROM t_h")
	if got[0][0].I != 1 {
		t.Fatalf("hinted read: %v", got)
	}
	s.SetHint(nil)
	got = mustQuery(t, s, "SELECT COUNT(*) FROM t_h")
	if got[0][0].I != 1 {
		t.Fatalf("broadcast read: %v", got)
	}
}

func TestKernelErrorPaths(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	// Unparseable SQL.
	if _, err := s.Exec("SELEC nonsense"); err == nil {
		t.Fatal("bad SQL accepted")
	}
	// Unknown table (unsharded → default source, engine reports missing).
	if _, err := s.Query("SELECT * FROM missing_table"); err == nil {
		t.Fatal("missing table accepted")
	}
	// Query() on a non-query statement.
	if _, err := s.Query("INSERT INTO t_user (uid, name, age) VALUES (1, 'a', 1)"); !errors.Is(err, ErrNotQuery) {
		t.Fatalf("Query on DML: %v", err)
	}
	// Exec() on a query drains and errors.
	if _, err := s.Exec("SELECT COUNT(*) FROM t_user"); err == nil {
		t.Fatal("Exec on query accepted")
	}
	// Updating the sharding key is rejected by the router.
	if _, err := s.Exec("UPDATE t_user SET uid = 1 WHERE uid = 2"); err == nil {
		t.Fatal("sharding key update accepted")
	}
	// Insert without the sharding key is rejected (uid has no generator).
	if _, err := s.Exec("INSERT INTO t_user (name, age) VALUES ('x', 1)"); err == nil {
		t.Fatal("keyless insert accepted")
	}
	// Empty config is rejected.
	if _, err := New(Config{}); err == nil {
		t.Fatal("kernel without sources accepted")
	}
	// DistSQL without a handler errors cleanly.
	if _, err := s.Execute("SHOW SHARDING TABLE RULES"); err == nil {
		t.Fatal("DistSQL without handler accepted")
	}
}

func TestCommitRollbackOutsideTxAreNoops(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	mustExec(t, s, "COMMIT")
	mustExec(t, s, "ROLLBACK")
}

func TestLeftJoinAcrossShards(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 6)
	// Remove some orders so the LEFT JOIN pads.
	mustExec(t, s, "DELETE FROM t_order WHERE uid IN (2, 4)")
	rows := mustQuery(t, s, `SELECT u.uid, o.amount FROM t_user u LEFT JOIN t_order o ON u.uid = o.uid ORDER BY u.uid`)
	if len(rows) != 6 {
		t.Fatalf("left join rows: %v", rows)
	}
	padded := 0
	for _, r := range rows {
		if r[1].IsNull() {
			padded++
		}
	}
	if padded != 2 {
		t.Fatalf("left join padding: %v", rows)
	}
}
