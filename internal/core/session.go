package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"shardingsphere/internal/digest"
	"shardingsphere/internal/exec"
	"shardingsphere/internal/merge"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/sqlparser"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/telemetry"
	"shardingsphere/internal/transaction"
)

// Result is the outcome of one statement: a row stream for queries, or an
// affected-rows count for everything else.
type Result struct {
	RS           resource.ResultSet
	Affected     int64
	LastInsertID int64
}

// IsQuery reports whether the result carries rows.
func (r *Result) IsQuery() bool { return r.RS != nil }

// Close releases the row stream, if any.
func (r *Result) Close() error {
	if r.RS != nil {
		return r.RS.Close()
	}
	return nil
}

// DistSQLHandler processes DistSQL statements; the distsql package
// installs it (a function value breaks the import cycle between the
// kernel and its management language).
type DistSQLHandler func(sess *Session, sql string) (*Result, error)

// SetDistSQLHandler installs the DistSQL processor.
func (k *Kernel) SetDistSQLHandler(h DistSQLHandler) { k.distSQL = h }

// NewSession opens a client session. Sessions are not safe for concurrent
// use, mirroring database connection semantics.
func (k *Kernel) NewSession() *Session {
	return &Session{
		k:      k,
		txType: k.defaultTxType,
		vars:   map[string]sqltypes.Value{},
	}
}

// Session is one client's state: its open distributed transaction, its
// transaction-type setting and its session variables (including the
// sharding hint).
type Session struct {
	k      *Kernel
	tx     transaction.Tx
	txType transaction.Type
	vars   map[string]sqltypes.Value
	hint   *sqltypes.Value
	// stmtTimeout bounds each statement's execution (SET VARIABLE
	// statement_timeout_ms); 0 means unbounded.
	stmtTimeout time.Duration
	// queueWait is frontend admission-queue time reported by the proxy
	// for the next statement (NoteQueueWait); Execute moves it into
	// stmtQueueWait, where runUnits subtracts it from the statement's
	// timeout budget — queue wait is time the client already spent.
	queueWait     time.Duration
	stmtQueueWait time.Duration
	// tr is the current statement's trace (nil when collection is off);
	// it lives only for the duration of one Execute call. trBuf is its
	// session-owned storage, reused across statements so the hot path
	// skips the collector's trace pool.
	tr    *telemetry.Trace
	trBuf telemetry.Trace
	// stmtDigest is the current statement's digest entry (nil when the
	// statement has no normalizable shape or digests are disabled);
	// stmtShards and stmtRetries are filled by runUnits so Execute can
	// observe the finished statement in one call after Finish.
	stmtDigest  *digest.Entry
	stmtShards  int
	stmtRetries int
}

// Kernel returns the owning kernel (DistSQL needs it).
func (s *Session) Kernel() *Kernel { return s.k }

// InTransaction reports whether a distributed transaction is open.
func (s *Session) InTransaction() bool { return s.tx != nil }

// TransactionType returns the session's transaction type.
func (s *Session) TransactionType() transaction.Type { return s.txType }

// SetTransactionType switches the transaction type for subsequent
// transactions (DistSQL RAL: SET VARIABLE transaction_type = ...).
func (s *Session) SetTransactionType(t transaction.Type) { s.txType = t }

// SetHint sets the out-of-band sharding hint value; pass nil to clear.
func (s *Session) SetHint(v *sqltypes.Value) { s.hint = v }

// Vars exposes the session variables.
func (s *Session) Vars() map[string]sqltypes.Value { return s.vars }

// SetStatementTimeout bounds each subsequent statement's execution; 0
// removes the bound (SET VARIABLE statement_timeout_ms).
func (s *Session) SetStatementTimeout(d time.Duration) { s.stmtTimeout = d }

// StatementTimeout returns the session's statement deadline (0 when
// unbounded).
func (s *Session) StatementTimeout() time.Duration { return s.stmtTimeout }

// NoteQueueWait tells the session how long the next statement sat in the
// frontend admission queue. The wait is charged against the statement's
// timeout budget and recorded as an admission_wait span on sampled
// traces. It applies to exactly one statement.
func (s *Session) NoteQueueWait(d time.Duration) { s.queueWait = d }

// Close rolls back any open transaction.
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Rollback(context.Background())
		s.tx = nil
	}
}

// Execute runs one SQL or DistSQL statement. Cacheable DML goes through
// the kernel's shared parameterized plan cache: the statement is
// normalized (literals → parameter slots), the shape's plan is looked up
// or compiled once, and execution binds the captured values — on a cache
// hit the parser never runs (the former per-session exact-string AST map,
// wiped wholesale at 4096 entries, is gone).
func (s *Session) Execute(sql string, args ...sqltypes.Value) (*Result, error) {
	s.stmtQueueWait, s.queueWait = s.queueWait, 0
	if isDistSQL(sql) {
		if s.k.distSQL == nil {
			return nil, fmt.Errorf("core: DistSQL handler not installed")
		}
		return s.k.distSQL(s, sql)
	}
	tr := s.k.tel.StartInto(&s.trBuf, sql)
	tr.AddQueueWait(s.stmtQueueWait)
	s.tr = tr
	s.stmtDigest, s.stmtShards, s.stmtRetries = nil, 0, 0
	res, err := s.executeSQL(sql, args)
	s.tr = nil
	tr.Finish(err)
	if e := s.stmtDigest; e != nil {
		// Trace-finish hook: one Observe per statement. Query rows are
		// charged as they stream to the client; DML charges the affected
		// count directly.
		e.Observe(tr.Total(), s.stmtShards, s.stmtRetries, err != nil)
		if res != nil {
			switch rs := res.RS.(type) {
			case nil:
				e.AddRows(res.Affected, 0)
			case *resource.SliceResultSet:
				// Drained result: charge the rows already in memory instead
				// of paying a wrapper allocation and a per-batch interface
				// hop on the client read path.
				var b int64
				for _, r := range rs.Data {
					b += digest.RowBytes(r)
				}
				e.AddRows(int64(len(rs.Data)), b)
			case *resource.ConnLease:
				// Single-shard stream handed through unmerged: ride the
				// lease's sink slots instead of another wrapper.
				rs.AddSink(e)
			default:
				res.RS = digest.WrapRows(res.RS, e)
			}
		}
	}
	return res, err
}

// ExecuteTraced runs one statement through the full (uncached) pipeline
// with a detailed, retained trace: every stage is marked, pool
// acquisition is timed per data source, and the trace survives Finish so
// the caller can read its span table (DistSQL TRACE). The caller must
// Release the returned trace.
func (s *Session) ExecuteTraced(sql string, args ...sqltypes.Value) (*Result, *telemetry.Trace, error) {
	s.stmtQueueWait, s.queueWait = s.queueWait, 0
	tr := s.k.tel.StartDetailed(sql)
	tr.AddQueueWait(s.stmtQueueWait)
	s.tr = tr
	stmt, err := sqlparser.Parse(sql)
	tr.Mark(telemetry.StageParse)
	var res *Result
	if err == nil {
		res, err = s.ExecuteStmt(stmt, args)
	}
	s.tr = nil
	tr.Finish(err)
	return res, tr, err
}

// executeSQL is the statement body of Execute: plan-cache fast path or
// parse + generic pipeline.
func (s *Session) executeSQL(sql string, args []sqltypes.Value) (*Result, error) {
	if pc := s.k.planCache; pc != nil {
		if norm, ok := sqlparser.Normalize(sql); ok {
			// Locking reads inside a distributed transaction bypass the
			// cache: a SELECT ... FOR UPDATE under XA must see the pipeline
			// state of its own transaction, never a shared shortcut.
			if !(norm.ForUpdate && s.tx != nil) {
				if bound, err := norm.BindArgs(args); err == nil {
					v, err := pc.GetOrCompute(norm.Key, func() (any, error) {
						return buildPlan(s.k, norm)
					})
					if err == nil {
						return s.executePlan(v.(*plan), bound)
					}
					// A failed build is not cached; fall through to a full
					// parse so syntax errors reference the original text.
				}
			}
			// Normalizable but off the plan path (locking read in a
			// transaction, bind or build failure): resolve the digest by
			// shape so these executions still aggregate.
			s.noteDigest(norm.Key)
		}
	} else if s.k.workload != nil {
		if norm, ok := sqlparser.Normalize(sql); ok {
			s.noteDigest(norm.Key)
		}
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	s.tr.Mark(telemetry.StageParse)
	return s.ExecuteStmt(stmt, args)
}

// noteDigest resolves the statement's digest entry by its normalized
// shape and stamps the trace, so a slow-log capture carries the same
// digest id the registry row shows (and redacts without re-normalizing).
func (s *Session) noteDigest(key string) {
	w := s.k.workload
	if w == nil {
		return
	}
	e := w.Digests.Get(key)
	s.stmtDigest = e
	s.tr.SetDigest(e.ID, key)
}

// Query runs a statement that must return rows.
func (s *Session) Query(sql string, args ...sqltypes.Value) (resource.ResultSet, error) {
	res, err := s.Execute(sql, args...)
	if err != nil {
		return nil, err
	}
	if !res.IsQuery() {
		return nil, fmt.Errorf("%w: %s", ErrNotQuery, sql)
	}
	return res.RS, nil
}

// Exec runs a statement that returns no rows.
func (s *Session) Exec(sql string, args ...sqltypes.Value) (resource.ExecResult, error) {
	res, err := s.Execute(sql, args...)
	if err != nil {
		return resource.ExecResult{}, err
	}
	if res.IsQuery() {
		res.Close()
		return resource.ExecResult{}, fmt.Errorf("core: %s returned rows; use Query", sql)
	}
	return resource.ExecResult{Affected: res.Affected, LastInsertID: res.LastInsertID}, nil
}

// ExecuteStmt runs a parsed statement through the kernel pipeline.
func (s *Session) ExecuteStmt(stmt sqlparser.Statement, args []sqltypes.Value) (*Result, error) {
	switch t := stmt.(type) {
	case *sqlparser.BeginStmt:
		if s.tx != nil {
			return nil, ErrInTransaction
		}
		tx, err := s.k.txMgr.Begin(s.txType)
		if err != nil {
			return nil, err
		}
		s.tx = tx
		return &Result{}, nil
	case *sqlparser.CommitStmt:
		if s.tx == nil {
			return &Result{}, nil
		}
		tx := s.tx
		s.tx = nil
		tx.AttachTrace(s.tr)
		ctx, cancel := s.stmtCtx()
		defer cancel()
		if err := tx.Commit(ctx); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.RollbackStmt:
		if s.tx == nil {
			return &Result{}, nil
		}
		tx := s.tx
		s.tx = nil
		tx.AttachTrace(s.tr)
		ctx, cancel := s.stmtCtx()
		defer cancel()
		if err := tx.Rollback(ctx); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.SetStmt:
		return s.executeSet(t)
	case *sqlparser.ShowStmt:
		return s.showTables()
	case *sqlparser.DescribeStmt:
		return s.describe(t)
	}

	// Generated keys: INSERTs into tables with a key generator that omit
	// the key column gain it before routing (the distributed replacement
	// for AUTO_INCREMENT; see sharding.KeyGenerator).
	var genKey int64
	if ins, ok := stmt.(*sqlparser.InsertStmt); ok {
		stmt, genKey = s.k.fillGeneratedKey(ins)
	}

	// Feature transforms (cached statements stay untouched: transformers
	// clone on write).
	var err error
	for _, f := range s.k.features {
		tr, ok := f.(StatementTransformer)
		if !ok {
			continue
		}
		stmt, args, err = tr.TransformStatement(stmt, args)
		if err != nil {
			return nil, err
		}
	}

	sel, isSelect := stmt.(*sqlparser.SelectStmt)
	if isSelect && len(sel.From) == 0 {
		return s.selectWithoutFrom(sel, args)
	}

	rt, err := s.k.router.Route(stmt, args, s.hint)
	if err != nil {
		return nil, err
	}
	s.tr.Mark(telemetry.StageRoute)
	rw, err := s.k.rewriter.Rewrite(stmt, rt, args)
	if err != nil {
		return nil, err
	}
	s.tr.Mark(telemetry.StageRewrite)
	return s.runUnits(stmt, sel, rw, genKey)
}

// stmtCtx bounds transaction-control work (COMMIT/ROLLBACK) with the
// session's statement deadline so statement_timeout_ms reaches the 2PC
// verbs, not just DML.
func (s *Session) stmtCtx() (context.Context, context.CancelFunc) {
	if s.stmtTimeout > 0 {
		return context.WithTimeout(context.Background(), s.stmtTimeout)
	}
	return context.Background(), func() {}
}

// runUnits executes rewritten SQL units: source resolution, circuit-breaker
// gates, transaction hooks, execution and merge. Both the generic pipeline
// and the plan cache's fast path end here.
//
// Fault tolerance happens at two levels. The statement deadline
// (statement_timeout_ms) bounds the whole call. Failover covers
// idempotent reads outside transactions: when an attempt dies of a
// transient infrastructure failure — or its resolved source is gated by
// an open breaker — the units are reset to their routed sources and
// re-resolved, so read-write splitting (whose replica table the
// governor's health events just updated) lands the retry on a healthy
// replica.
func (s *Session) runUnits(stmt sqlparser.Statement, sel *sqlparser.SelectStmt, rw *rewrite.Result, genKey int64) (*Result, error) {
	s.stmtShards = len(rw.Units)
	isSelect := sel != nil
	readOnly := isSelect && !sel.ForUpdate
	ctx := context.Background()
	var cancel context.CancelFunc
	if s.stmtTimeout > 0 {
		// Admission-queue wait is time the client already spent waiting on
		// this statement: charge it against the budget so the end-to-end
		// deadline holds. A fully consumed budget is a statement timeout —
		// the admission controller sheds such requests at the door, but
		// the queue estimate is predictive, so this is the backstop.
		budget := s.stmtTimeout - s.stmtQueueWait
		if budget <= 0 {
			s.k.statementTimeouts.Add(1)
			return nil, fmt.Errorf("%w: %v admission queue wait consumed the %v budget",
				ErrStatementTimeout, s.stmtQueueWait, s.stmtTimeout)
		}
		ctx, cancel = context.WithTimeout(ctx, budget)
	}
	canFailover := readOnly && s.tx == nil
	attempts := 1
	var origDS []string
	if canFailover {
		attempts = 1 + len(rw.Units) // at most one failover per candidate replica
		if attempts > 4 {
			attempts = 4
		}
		origDS = make([]string, len(rw.Units))
		for i := range rw.Units {
			origDS[i] = rw.Units[i].DataSource
		}
	}
	var res *Result
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			s.k.failovers.Add(1)
			s.stmtRetries++
			// The retry's execute spans continue the statement's attempt
			// sequence instead of restarting at 1, so TRACE shows the
			// failed try and the failover side by side.
			s.tr.BeginFailover()
			for i := range rw.Units {
				rw.Units[i].DataSource = origDS[i]
			}
		}
		res, err = s.runUnitsOnce(ctx, stmt, sel, rw, genKey, readOnly)
		if err == nil {
			if attempt > 0 {
				s.k.failoverSuccess.Add(1)
			}
			if cancel != nil {
				// A streaming result keeps reading through the timeout
				// context after this function returns; cancelling now
				// would kill the cursor mid-stream. Defer the cancel to
				// the result's Close, keeping the deadline live so a
				// stalled client still can't pin the statement forever.
				if res.RS != nil {
					res.RS = resource.WithCloseHook(res.RS, cancel)
				} else {
					cancel()
				}
			}
			return res, nil
		}
		if !canFailover || ctx.Err() != nil ||
			!(resource.IsTransient(err) || errors.Is(err, ErrSourceDown)) {
			break
		}
	}
	if cancel != nil {
		cancel()
	}
	if errors.Is(err, context.DeadlineExceeded) && s.stmtTimeout > 0 {
		s.k.statementTimeouts.Add(1)
		return nil, fmt.Errorf("%w after %v: %w", ErrStatementTimeout, s.stmtTimeout, err)
	}
	return nil, err
}

// runUnitsOnce is one execution attempt of runUnits.
func (s *Session) runUnitsOnce(ctx context.Context, stmt sqlparser.Statement, sel *sqlparser.SelectStmt, rw *rewrite.Result, genKey int64, readOnly bool) (*Result, error) {
	isSelect := sel != nil
	s.k.resolveSources(rw.Units, readOnly, s.tx != nil, stmt)
	if err := s.k.checkGates(rw.Units); err != nil {
		return nil, err
	}

	if s.tx != nil {
		// Transaction phases (XA prepare/commit, BASE undo capture) record
		// their spans into the current statement's trace.
		s.tx.AttachTrace(s.tr)
		if err := s.tx.BeforeStatement(ctx, rw.Units); err != nil {
			return nil, err
		}
	}
	var result *Result
	var execErr error
	if isSelect {
		var qr *execQueryResult
		qr, execErr = s.runQuery(ctx, rw, readOnly && s.tx == nil)
		if execErr == nil {
			s.tr.Mark(telemetry.StageExecute)
			var rs resource.ResultSet
			rs, execErr = merge.Merge(qr.sets, rw.Select)
			if execErr == nil {
				for _, f := range s.k.features {
					if d, ok := f.(ResultDecorator); ok {
						rs, execErr = d.DecorateResult(stmt, rs)
						if execErr != nil {
							break
						}
					}
				}
			}
			if execErr == nil {
				result = &Result{RS: rs}
				s.tr.Mark(telemetry.StageMerge)
			}
		}
	} else {
		var er resource.ExecResult
		var held = heldOf(s.tx)
		er, execErr = s.k.executor.ExecuteUpdateCtx(ctx, rw.Units, held, s.tr)
		if execErr == nil {
			s.tr.Mark(telemetry.StageExecute)
			result = &Result{Affected: er.Affected, LastInsertID: er.LastInsertID}
			if genKey != 0 {
				result.LastInsertID = genKey
			}
			if stmt.StatementType() == sqlparser.StmtDDL {
				s.k.InvalidateMeta()
			}
		}
	}
	if s.tx != nil {
		if err := s.tx.AfterStatement(ctx, rw.Units, execErr); err != nil {
			return nil, err
		}
		// Include AfterStatement work (BASE local commits) in the trace
		// total without attributing it to the next stage.
		s.tr.Skip()
	}
	if execErr != nil {
		return nil, execErr
	}
	return result, nil
}

type execQueryResult struct {
	sets []resource.ResultSet
}

func (s *Session) runQuery(ctx context.Context, rw *rewrite.Result, retry bool) (*execQueryResult, error) {
	qr, err := s.k.executor.QueryCtx(ctx, rw.Units, heldOf(s.tx), s.tr, retry)
	if err != nil {
		return nil, err
	}
	return &execQueryResult{sets: qr.Sets}, nil
}

func heldOf(tx transaction.Tx) *exec.HeldConns {
	if tx == nil {
		return nil
	}
	return tx.Held()
}

func (s *Session) executeSet(t *sqlparser.SetStmt) (*Result, error) {
	name := strings.ToLower(t.Name)
	s.vars[name] = t.Value
	switch name {
	case "transaction_type":
		typ, err := transaction.ParseType(t.Value.AsString())
		if err != nil {
			return nil, err
		}
		s.txType = typ
	case "sharding_hint":
		v := t.Value
		if v.IsNull() {
			s.hint = nil
		} else {
			s.hint = &v
		}
	case "statement_timeout_ms":
		ms := t.Value.AsInt()
		if ms < 0 {
			return nil, fmt.Errorf("core: statement_timeout_ms must be >= 0, got %d", ms)
		}
		s.stmtTimeout = time.Duration(ms) * time.Millisecond
	}
	return &Result{}, nil
}

// showTables lists the logic tables: rule tables, broadcast tables and
// the unsharded tables on the default source.
func (s *Session) showTables() (*Result, error) {
	seen := map[string]bool{}
	var names []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, t := range s.k.rules.LogicTables() {
		add(t)
	}
	for t := range s.k.rules.Broadcast {
		add(t)
	}
	if def := s.k.rules.DefaultDataSource; def != "" {
		if src, err := s.k.executor.Source(def); err == nil {
			if conn, err := src.Acquire(); err == nil {
				if rs, err := conn.Query(context.Background(), "SHOW TABLES"); err == nil {
					rows, _ := resource.ReadAll(rs)
					for _, r := range rows {
						if !s.k.isActualTable(r[0].AsString()) {
							add(r[0].AsString())
						}
					}
				}
				conn.Release()
			}
		}
	}
	names = sortedNames(names)
	rows := make([]sqltypes.Row, len(names))
	for i, n := range names {
		rows[i] = sqltypes.Row{sqltypes.NewString(n)}
	}
	return &Result{RS: resource.NewSliceResultSet([]string{"Tables"}, rows)}, nil
}

// isActualTable reports whether the name is an actual shard of some rule
// (hidden from SHOW TABLES).
func (k *Kernel) isActualTable(name string) bool {
	for _, r := range k.rules.Tables {
		for _, n := range r.DataNodes {
			if strings.EqualFold(n.Table, name) {
				return true
			}
		}
	}
	return false
}

// describe forwards DESCRIBE to the first data node of the logic table.
func (s *Session) describe(t *sqlparser.DescribeStmt) (*Result, error) {
	ds := s.k.rules.DefaultDataSource
	table := t.Table
	if rule, ok := s.k.rules.Rule(t.Table); ok && len(rule.DataNodes) > 0 {
		ds = rule.DataNodes[0].DataSource
		table = rule.DataNodes[0].Table
	}
	src, err := s.k.executor.Source(ds)
	if err != nil {
		return nil, err
	}
	conn, err := src.Acquire()
	if err != nil {
		return nil, err
	}
	defer conn.Release()
	rs, err := conn.Query(context.Background(), "DESCRIBE "+table)
	if err != nil {
		return nil, err
	}
	rows, err := resource.ReadAll(rs)
	if err != nil {
		return nil, err
	}
	return &Result{RS: resource.NewSliceResultSet(rs.Columns(), rows)}, nil
}

// fillGeneratedKey appends the key-generator column and fresh keys to an
// INSERT that omits it. It returns the (possibly cloned) statement and the
// last key generated (0 when none).
func (k *Kernel) fillGeneratedKey(ins *sqlparser.InsertStmt) (sqlparser.Statement, int64) {
	rule, ok := k.rules.Rule(ins.Table)
	if !ok || rule.KeyGen == nil || rule.KeyGenColumn == "" || len(ins.Columns) == 0 {
		return ins, 0
	}
	for _, c := range ins.Columns {
		if strings.EqualFold(c, rule.KeyGenColumn) {
			return ins, 0
		}
	}
	clone := sqlparser.CloneStatement(ins).(*sqlparser.InsertStmt)
	clone.Columns = append(clone.Columns, rule.KeyGenColumn)
	var last int64
	for i := range clone.Rows {
		last = rule.KeyGen.NextKey()
		clone.Rows[i] = append(clone.Rows[i], &sqlparser.Literal{Val: sqltypes.NewInt(last)})
	}
	return clone, last
}

// selectWithoutFrom evaluates table-less selects on the default source.
func (s *Session) selectWithoutFrom(sel *sqlparser.SelectStmt, args []sqltypes.Value) (*Result, error) {
	ds := s.k.rules.DefaultDataSource
	src, err := s.k.executor.Source(ds)
	if err != nil {
		return nil, err
	}
	conn, err := src.Acquire()
	if err != nil {
		return nil, err
	}
	defer conn.Release()
	ser := sqlparser.NewSerializer(src.Dialect())
	rs, err := conn.Query(context.Background(), ser.Serialize(sel), args...)
	if err != nil {
		return nil, err
	}
	rows, err := resource.ReadAll(rs)
	if err != nil {
		return nil, err
	}
	return &Result{RS: resource.NewSliceResultSet(rs.Columns(), rows)}, nil
}
