package core

import (
	"sync/atomic"

	"shardingsphere/internal/digest"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/route"
	"shardingsphere/internal/sqlparser"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/telemetry"
)

// plan is one cached statement shape: the parsed AST plus, for shapes the
// fast path serves, the precomputed route skeleton and rewrite template.
// Plans are shared across sessions and never mutated after buildPlan; every
// pipeline stage that needs to change the AST clones it first.
type plan struct {
	key  string
	stmt sqlparser.Statement
	sel  *sqlparser.SelectStmt // non-nil when stmt is a SELECT

	// fast marks shapes executed without any AST walk: bind args → skeleton
	// route → template splice. Everything else replays the generic pipeline
	// on the cached AST (still zero parser invocations).
	fast        bool
	skel        *route.Skeleton
	tmpl        *rewrite.Template
	selCtx      *rewrite.SelectContext // single-node merge context (SELECT only)
	tableInStmt string                 // logic table as written in the statement
	logicTable  string                 // rule's LogicTable key for TableMap lookups

	// dig caches the shape's digest entry so plan-cache hits skip even
	// the registry's striped map probe; the epoch detects RESET DIGESTS
	// and entry eviction forces a re-resolve through Touch.
	dig atomic.Pointer[digRef]
}

// digRef pairs a digest entry with the registry epoch it was resolved
// under.
type digRef struct {
	e     *digest.Entry
	epoch uint64
}

// buildPlan compiles a normalized shape into a plan. It runs once per shape
// (under the plan cache's singleflight); a parse error here means the
// caller re-parses the original text so the error carries it.
func buildPlan(k *Kernel, norm *sqlparser.Normalized) (*plan, error) {
	stmt, err := sqlparser.Parse(norm.Key)
	if err != nil {
		return nil, err
	}
	p := &plan{key: norm.Key, stmt: stmt}
	p.sel, _ = stmt.(*sqlparser.SelectStmt)

	// Fast-path eligibility. Statement transformers (encrypt, shadow) may
	// rewrite the AST per execution, so their presence keeps every shape on
	// the generic pipeline.
	if k.hasTransformers {
		return p, nil
	}
	switch t := stmt.(type) {
	case *sqlparser.SelectStmt:
		if len(t.From) != 1 {
			return p, nil
		}
		p.tableInStmt = t.From[0].Name
	case *sqlparser.UpdateStmt:
		p.tableInStmt = t.Table
	case *sqlparser.DeleteStmt:
		p.tableInStmt = t.Table
	default:
		return p, nil
	}
	skel, ok := k.router.BuildSkeleton(stmt)
	if !ok {
		return p, nil
	}
	tmpl, ok := rewrite.NewTemplate(stmt, p.tableInStmt)
	if !ok {
		return p, nil
	}
	if rule, ok := k.rules.Rule(p.tableInStmt); ok {
		p.logicTable = rule.LogicTable
	}
	if p.sel != nil {
		p.selCtx = rewrite.SingleNodeSelectContext(p.sel)
	}
	p.fast, p.skel, p.tmpl = true, skel, tmpl
	return p, nil
}

// executePlan runs a cached plan with bound argument values. Fast shapes
// route through the skeleton and splice the rewrite template; everything
// else replays the generic pipeline on the cached AST. The fast path
// records one combined plan_cache span (normalize + lookup + route +
// render) instead of separate route/rewrite marks, keeping the hot path
// at a handful of clock reads.
func (s *Session) executePlan(p *plan, args []sqltypes.Value) (*Result, error) {
	s.resolvePlanDigest(p)
	if !p.fast {
		s.tr.Mark(telemetry.StagePlanCache)
		return s.ExecuteStmt(p.stmt, args)
	}
	rt, err := p.skel.Route(args, s.hint)
	if err != nil {
		return nil, err
	}
	if p.sel != nil && p.sel.Limit != nil {
		// Reproduce the rewriter's LIMIT validation (single-node pagination
		// is pushed down, but bad values must still error here).
		if _, err := rewrite.EvalLimit(p.sel.Limit, args); err != nil {
			return nil, err
		}
	}
	var rw *rewrite.Result
	if rt.SingleNode() {
		unit := rt.Units[0]
		actual := p.tableInStmt
		if a, ok := unit.TableMap[p.logicTable]; ok {
			actual = a
		}
		sql, ok := p.tmpl.Render(s.k.dialectOf(unit.DataSource), actual)
		if !ok {
			s.tr.Mark(telemetry.StagePlanCache)
			return s.ExecuteStmt(p.stmt, args)
		}
		rw = &rewrite.Result{
			Units: []rewrite.SQLUnit{{
				DataSource:  unit.DataSource,
				SQL:         sql,
				Args:        args,
				LogicTable:  p.logicTable,
				ActualTable: actual,
			}},
			Select: p.selCtx,
		}
	} else {
		// Multi-node shapes need column derivation / pagination revision;
		// run the full rewriter on the cached AST (clone-on-write inside).
		rw, err = s.k.rewriter.Rewrite(p.stmt, rt, args)
		if err != nil {
			return nil, err
		}
	}
	s.tr.Mark(telemetry.StagePlanCache)
	return s.runUnits(p.stmt, p.sel, rw, 0)
}

// resolvePlanDigest attaches the plan's digest entry to the current
// statement. The entry pointer rides the cached plan, so a plan-cache
// hit refreshes the LRU stamp without a map probe; the registry is
// consulted only when the cache is cold, the entry was evicted, or a
// RESET DIGESTS bumped the epoch.
func (s *Session) resolvePlanDigest(p *plan) {
	w := s.k.workload
	if w == nil {
		return
	}
	reg := w.Digests
	if ref := p.dig.Load(); ref != nil && ref.epoch == reg.Epoch() && reg.Touch(ref.e) {
		s.stmtDigest = ref.e
		s.tr.SetDigest(ref.e.ID, p.key)
		return
	}
	e := reg.Get(p.key)
	p.dig.Store(&digRef{e: e, epoch: reg.Epoch()})
	s.stmtDigest = e
	s.tr.SetDigest(e.ID, p.key)
}
