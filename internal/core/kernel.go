// Package core is the kernel of the platform (paper Section III): it wires
// the SQL engine's five stages — parse, route, rewrite, execute, merge —
// into one pipeline, threads the three distributed-transaction types
// through it, and exposes the pluggable feature hooks (read-write
// splitting, encryption, shadow, …) that decorate each stage. Both
// adaptors — the embedded driver ("ShardingSphere-JDBC") and the network
// proxy ("ShardingSphere-Proxy") — are thin shells around this package.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shardingsphere/internal/admission"
	"shardingsphere/internal/chaos"
	"shardingsphere/internal/digest"
	"shardingsphere/internal/exec"
	"shardingsphere/internal/plancache"
	"shardingsphere/internal/registry"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/route"
	"shardingsphere/internal/sharding"
	"shardingsphere/internal/sqlparser"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/telemetry"
	"shardingsphere/internal/transaction"
)

// Errors returned by the kernel.
var (
	ErrInTransaction    = errors.New("core: already in a transaction")
	ErrNotQuery         = errors.New("core: statement returns no rows")
	ErrSourceDown       = errors.New("core: data source disabled by circuit breaker")
	ErrStatementTimeout = errors.New("core: statement timeout")
)

// Feature is the base of the pluggable feature SPI. Concrete features
// additionally implement one or more of StatementTransformer,
// SourceResolver and ResultDecorator; the kernel calls whichever hooks a
// feature provides, in registration order.
type Feature interface {
	Name() string
}

// StatementTransformer rewrites a statement before routing (e.g. the
// encrypt feature replaces plaintext literals with ciphertext).
type StatementTransformer interface {
	TransformStatement(stmt sqlparser.Statement, args []sqltypes.Value) (sqlparser.Statement, []sqltypes.Value, error)
}

// SourceResolver remaps a routed data source before execution (read-write
// splitting picks a replica for reads; shadow diverts test traffic).
type SourceResolver interface {
	ResolveSource(ds string, readOnly, inTx bool, stmt sqlparser.Statement) string
}

// ResultDecorator wraps the merged result before it reaches the client
// (encrypt decrypts selected columns).
type ResultDecorator interface {
	DecorateResult(stmt sqlparser.Statement, rs resource.ResultSet) (resource.ResultSet, error)
}

// SourceGate vetoes execution on a data source (circuit breaking).
type SourceGate interface {
	Allow(ds string) bool
}

// Config assembles a kernel.
type Config struct {
	Rules   *sharding.RuleSet
	Sources map[string]*resource.DataSource
	// MaxCon is the per-query connection budget per data source (paper
	// Section VI-D). Default 1.
	MaxCon int
	// Registry is the Governor's coordination store; nil for a private
	// in-memory one.
	Registry *registry.Registry
	// TxLog overrides the XA transaction log (default: registry-backed).
	TxLog transaction.LogStore
	// Features are the pluggable features, applied in order.
	Features []Feature
	// DefaultTxType is the initial distributed transaction type.
	DefaultTxType transaction.Type
	// PlanCacheSize bounds the shared parameterized plan cache (0 uses
	// plancache.DefaultCapacity; negative disables caching — every
	// statement re-runs the full parse→route→rewrite pipeline).
	PlanCacheSize int
	// DisableTelemetry turns off per-statement trace collection (the
	// collector still exists so TRACE and DistSQL surfaces keep working).
	DisableTelemetry bool
	// DisableDigests turns off the workload-observability plane (statement
	// digests + shard heat map); used by the overhead benchmark's baseline.
	DisableDigests bool
	// DigestCapacity bounds the statement digest registry (0 uses
	// digest.DefaultCapacity).
	DigestCapacity int
}

// Kernel is one runtime instance shared by all sessions.
type Kernel struct {
	rules    *sharding.RuleSet
	router   *route.Router
	rewriter *rewrite.Rewriter
	executor *exec.Executor
	txMgr    *transaction.Manager
	registry *registry.Registry
	features []Feature
	// gates is copy-on-write: AddGate swaps in a new slice while
	// concurrent statements iterate the old one lock-free.
	gates atomic.Pointer[[]SourceGate]

	// chaosInj is the kernel's fault-injection table (DistSQL INJECT
	// FAULT); it wires interceptors onto data sources on demand.
	chaosInj *chaos.Injector

	// admissionCtl is the frontend admission controller when a proxy
	// installed one (SHOW ADMISSION STATUS, admission quotas); nil for
	// embedded deployments with no frontend.
	admissionCtl atomic.Pointer[admission.Controller]

	// Fault-tolerance counters (surfaced in SHOW SQL METRICS and the
	// governor's metrics snapshot).
	failovers         atomic.Uint64
	failoverSuccess   atomic.Uint64
	statementTimeouts atomic.Uint64

	metaMu    sync.RWMutex
	metaCache map[string]tableMeta

	defaultTxType transaction.Type
	distSQL       DistSQLHandler

	// planCache is the shared parameterized plan cache (nil when disabled).
	// hasTransformers gates its fast path: statement-transforming features
	// force every shape back onto the generic pipeline.
	planCache       *plancache.Cache
	hasTransformers bool

	// tel is the always-on telemetry collector every statement feeds.
	tel *telemetry.Collector

	// workload is the digest/heat/hot-key plane (nil when disabled);
	// sessions feed digests, the executor feeds heat, the router feeds
	// hot keys.
	workload *digest.Workload

	ruleMu sync.RWMutex
}

type tableMeta struct {
	pk   []string
	cols []string
}

// New builds a kernel from the config.
func New(cfg Config) (*Kernel, error) {
	if cfg.Rules == nil {
		cfg.Rules = sharding.NewRuleSet()
	}
	if len(cfg.Sources) == 0 {
		return nil, fmt.Errorf("core: at least one data source is required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = registry.New()
	}
	var names []string
	for n := range cfg.Sources {
		names = append(names, n)
	}
	if cfg.Rules.DefaultDataSource == "" {
		// Deterministic default: lexically smallest source.
		min := names[0]
		for _, n := range names[1:] {
			if n < min {
				min = n
			}
		}
		cfg.Rules.DefaultDataSource = min
	}
	executor := exec.New(cfg.Sources, cfg.MaxCon)
	tel := telemetry.NewCollector()
	if cfg.DisableTelemetry {
		tel.SetEnabled(false)
	}
	executor.SetTelemetry(tel)
	for name, src := range cfg.Sources {
		name := name
		src.SetAcquireObserver(func(wait time.Duration, timedOut bool) {
			tel.ObserveAcquire(name, wait, timedOut)
		})
	}
	k := &Kernel{
		rules:         cfg.Rules,
		router:        route.New(cfg.Rules, sortedNames(names)),
		executor:      executor,
		registry:      reg,
		features:      cfg.Features,
		chaosInj:      chaos.NewInjector(),
		metaCache:     map[string]tableMeta{},
		defaultTxType: cfg.DefaultTxType,
		tel:           tel,
	}
	k.router.Columns = func(logicTable string) ([]string, error) {
		rule, ok := k.rules.Rule(logicTable)
		if !ok || len(rule.DataNodes) == 0 {
			return nil, fmt.Errorf("core: no data nodes for %s", logicTable)
		}
		first := rule.DataNodes[0]
		_, cols, err := k.TableMeta(first.DataSource, first.Table)
		return cols, err
	}
	k.rewriter = rewrite.New(k.dialectOf)
	if cfg.PlanCacheSize >= 0 {
		k.planCache = plancache.New(cfg.PlanCacheSize)
	}
	for _, f := range cfg.Features {
		if _, ok := f.(StatementTransformer); ok {
			k.hasTransformers = true
		}
	}
	txLog := cfg.TxLog
	if txLog == nil {
		txLog = transaction.NewRegistryLog(reg, "/transactions")
	}
	k.txMgr = transaction.NewManager(executor, txLog, k)
	k.txMgr.SetTelemetry(tel)
	// Chaos can kill the 2PC coordinator at protocol points (INJECT FAULT
	// coordinator); with no fault applied the hook is a cheap no.
	k.txMgr.SetCrashHook(k.chaosInj.CoordinatorCrash)
	var gates []SourceGate
	for _, f := range cfg.Features {
		if g, ok := f.(SourceGate); ok {
			gates = append(gates, g)
		}
	}
	k.gates.Store(&gates)
	if !cfg.DisableDigests {
		k.workload = digest.NewWorkload(cfg.DigestCapacity)
		executor.SetHeat(k.workload.Heat)
		// Digest/heat totals ride the federated snapshot so cluster-wide
		// counts merge exactly through MetricsPull/MergeSnapshots.
		tel.RegisterSnapshotExtra(k.workload.SnapshotInto)
	}
	return k, nil
}

func sortedNames(names []string) []string {
	out := append([]string(nil), names...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Rules returns the live rule set. Callers mutating it must hold no
// concurrent statements (DistSQL serializes through LockRules).
func (k *Kernel) Rules() *sharding.RuleSet { return k.rules }

// Executor exposes the execution engine (used by features and DistSQL).
func (k *Kernel) Executor() *exec.Executor { return k.executor }

// Registry exposes the Governor's coordination store.
func (k *Kernel) Registry() *registry.Registry { return k.registry }

// TxManager exposes the distributed transaction manager.
func (k *Kernel) TxManager() *transaction.Manager { return k.txMgr }

// Router exposes the router (tests and PREVIEW).
func (k *Kernel) Router() *route.Router { return k.router }

// LockRules serializes rule mutations; returns the unlock function.
func (k *Kernel) LockRules() func() {
	k.ruleMu.Lock()
	return k.ruleMu.Unlock
}

// InvalidateMeta clears the table-metadata cache (after DDL). Cached plans
// depend on the same schema and rule state, so the plan-cache epoch bumps
// with it.
func (k *Kernel) InvalidateMeta() {
	k.metaMu.Lock()
	k.metaCache = map[string]tableMeta{}
	k.metaMu.Unlock()
	k.BumpPlanEpoch()
}

// PlanCache exposes the shared plan cache (nil when disabled); DistSQL's
// SHOW PLAN CACHE STATUS and the governor's metrics listener read it.
func (k *Kernel) PlanCache() *plancache.Cache { return k.planCache }

// Telemetry exposes the statement telemetry collector (never nil).
func (k *Kernel) Telemetry() *telemetry.Collector { return k.tel }

// Workload exposes the digest/heat/hot-key plane (nil when disabled).
func (k *Kernel) Workload() *digest.Workload { return k.workload }

// SetHotKeyTracking switches the hot-key sketch on or off (SET VARIABLE
// hotkey_tracking). The router observer is installed only while
// tracking is on, so the disabled cost at route time is one atomic nil
// load.
func (k *Kernel) SetHotKeyTracking(on bool) {
	if k.workload == nil {
		return
	}
	k.workload.SetHotKeyTracking(on)
	if on {
		t := k.workload.HotKeys()
		k.router.SetKeyObserver(func(table, column string, v sqltypes.Value) {
			t.Note(table, column, v.AsString())
		})
	} else {
		k.router.SetKeyObserver(nil)
	}
}

// BumpPlanEpoch invalidates every cached plan. DDL, DistSQL rule changes
// and governor-pushed config updates call it.
func (k *Kernel) BumpPlanEpoch() {
	if k.planCache != nil {
		k.planCache.Invalidate()
	}
}

// dialectOf resolves a data source's SQL dialect (MySQL for unknown
// sources, matching the rewriter's historical default).
func (k *Kernel) dialectOf(ds string) sqlparser.Dialect {
	if src, err := k.executor.Source(ds); err == nil {
		return src.Dialect()
	}
	return sqlparser.DialectMySQL
}

// TableMeta implements transaction.MetaProvider: it resolves the primary
// key and columns of an actual table by asking the data source (DESCRIBE)
// and caches the answer — the kernel-side metadata service the Governor's
// configuration management keeps in real deployments.
func (k *Kernel) TableMeta(ds, table string) ([]string, []string, error) {
	key := ds + "." + table
	k.metaMu.RLock()
	m, ok := k.metaCache[key]
	k.metaMu.RUnlock()
	if ok {
		return m.pk, m.cols, nil
	}
	src, err := k.executor.Source(ds)
	if err != nil {
		return nil, nil, err
	}
	conn, err := src.Acquire()
	if err != nil {
		return nil, nil, err
	}
	defer conn.Release()
	rs, err := conn.Query(context.Background(), "DESCRIBE "+table)
	if err != nil {
		return nil, nil, err
	}
	rows, err := resource.ReadAll(rs)
	if err != nil {
		return nil, nil, err
	}
	var meta tableMeta
	for _, r := range rows {
		meta.cols = append(meta.cols, r[0].AsString())
		if r[2].AsString() == "PRI" {
			meta.pk = append(meta.pk, r[0].AsString())
		}
	}
	k.metaMu.Lock()
	k.metaCache[key] = meta
	k.metaMu.Unlock()
	return meta.pk, meta.cols, nil
}

// AddGate installs a source gate at runtime; the governor registers its
// circuit breakers this way. Copy-on-write: concurrent statements keep
// iterating the previous gate slice unharmed.
func (k *Kernel) AddGate(g SourceGate) {
	for {
		old := k.gates.Load()
		next := make([]SourceGate, len(*old)+1)
		copy(next, *old)
		next[len(*old)] = g
		if k.gates.CompareAndSwap(old, &next) {
			return
		}
	}
}

// checkGates rejects units aimed at circuit-broken sources.
func (k *Kernel) checkGates(units []rewrite.SQLUnit) error {
	for _, g := range *k.gates.Load() {
		for _, u := range units {
			if !g.Allow(u.DataSource) {
				return fmt.Errorf("%w: %s", ErrSourceDown, u.DataSource)
			}
		}
	}
	return nil
}

// Features returns the registered pluggable features (DistSQL wiring
// walks it to find the read-write splitting feature for health events).
func (k *Kernel) Features() []Feature { return k.features }

// Chaos exposes the kernel's fault-injection table.
func (k *Kernel) Chaos() *chaos.Injector { return k.chaosInj }

// SetAdmission installs the proxy frontend's admission controller so
// DistSQL surfaces (SHOW ADMISSION STATUS, SET VARIABLE admission_quota)
// can reach it.
func (k *Kernel) SetAdmission(c *admission.Controller) { k.admissionCtl.Store(c) }

// Admission returns the installed admission controller, or nil.
func (k *Kernel) Admission() *admission.Controller { return k.admissionCtl.Load() }

// ResilienceMetrics is a governor MetricsSource: the kernel's failover
// and statement-timeout counters.
func (k *Kernel) ResilienceMetrics() map[string]int64 {
	return map[string]int64{
		"failovers":          int64(k.failovers.Load()),
		"failover_success":   int64(k.failoverSuccess.Load()),
		"statement_timeouts": int64(k.statementTimeouts.Load()),
	}
}

// resolveSources applies SourceResolver features to every unit.
func (k *Kernel) resolveSources(units []rewrite.SQLUnit, readOnly, inTx bool, stmt sqlparser.Statement) {
	for _, f := range k.features {
		r, ok := f.(SourceResolver)
		if !ok {
			continue
		}
		for i := range units {
			units[i].DataSource = r.ResolveSource(units[i].DataSource, readOnly, inTx, stmt)
		}
	}
}

// isDistSQL sniffs DistSQL statements before the SQL parser sees them.
func isDistSQL(sql string) bool {
	s := strings.TrimSpace(sql)
	up := strings.ToUpper(s)
	for _, prefix := range []string{
		"CREATE SHARDING", "ALTER SHARDING", "DROP SHARDING",
		"SHOW SHARDING", "ADD RESOURCE", "DROP RESOURCE", "SHOW RESOURCES",
		"CREATE BINDING", "DROP BINDING", "SHOW BINDING",
		"SET VARIABLE", "SHOW VARIABLE", "PREVIEW", "SHOW STATUS",
		"CREATE BROADCAST", "SHOW BROADCAST", "SHOW TRANSACTION", "RESHARD",
		"SHOW PLAN CACHE", "SHOW SQL METRICS", "SHOW SLOW QUERIES", "TRACE ",
		"INJECT FAULT", "REMOVE FAULT", "SHOW FAULTS", "SHOW REMOTE",
		"SHOW CLUSTER", "SHOW ADMISSION",
		"SHOW STATEMENT DIGESTS", "SHOW SHARD HEAT", "SHOW HOT KEYS",
		"RESET DIGESTS",
	} {
		if strings.HasPrefix(up, prefix) {
			return true
		}
	}
	return false
}
