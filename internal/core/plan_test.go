package core

import (
	"fmt"
	"testing"

	"shardingsphere/internal/resource"
	"shardingsphere/internal/sharding"
	"shardingsphere/internal/sqlparser"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/storage"
	"shardingsphere/internal/transaction"
)

// parses counts parser invocations while fn runs.
func parses(fn func()) uint64 {
	before := sqlparser.ParseCount()
	fn()
	return sqlparser.ParseCount() - before
}

func TestPlanCacheZeroParseOnRepeatedShapes(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 10)

	// Warm the shape across every shard: the first execution compiles the
	// plan (one parse of the normalized key), and the embedded data nodes
	// parse each distinct actual-table text once into their own
	// prepared-statement caches — exactly what a real backend would do.
	warm := parses(func() {
		for uid := 1; uid <= 4; uid++ {
			mustQuery(t, s, fmt.Sprintf("SELECT name FROM t_user WHERE uid = %d", uid))
		}
	})
	if warm == 0 {
		t.Fatal("cold executions should parse")
	}
	// Same shape, different literals: the parser must not run at all.
	n := parses(func() {
		for uid := 5; uid <= 10; uid++ {
			rows := mustQuery(t, s, fmt.Sprintf("SELECT name FROM t_user WHERE uid = %d", uid))
			if len(rows) != 1 || rows[0][0].S != fmt.Sprintf("user%d", uid) {
				t.Fatalf("uid %d: %v", uid, rows)
			}
		}
	})
	if n != 0 {
		t.Fatalf("hot shape parsed %d times, want 0", n)
	}
	// Placeholder form shares the shape with the literal form.
	n = parses(func() {
		rows := mustQuery(t, s, "SELECT name FROM t_user WHERE uid = ?", sqltypes.NewInt(3))
		if len(rows) != 1 || rows[0][0].S != "user3" {
			t.Fatalf("placeholder exec: %v", rows)
		}
	})
	if n != 0 {
		t.Fatalf("placeholder variant parsed %d times, want 0", n)
	}
}

func TestPlanCacheSharedAcrossSessions(t *testing.T) {
	k := newKernel(t, 2, 4)
	s1 := k.NewSession()
	seed(t, s1, 5)
	mustQuery(t, s1, "SELECT name FROM t_user WHERE uid = 1") // warm (shard 1)

	s2 := k.NewSession()
	n := parses(func() {
		// uid 5 lands on the warmed shard; only the kernel could parse here.
		rows := mustQuery(t, s2, "SELECT name FROM t_user WHERE uid = 5")
		if len(rows) != 1 || rows[0][0].S != "user5" {
			t.Fatalf("cross-session: %v", rows)
		}
	})
	if n != 0 {
		t.Fatalf("second session parsed %d times; plans must be shared", n)
	}
}

func TestPlanCacheCorrectAcrossShards(t *testing.T) {
	// Every uid routes through the same cached plan to a different shard;
	// updates and deletes through the fast path must hit the same rows.
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 16)
	for uid := 1; uid <= 16; uid++ {
		rows := mustQuery(t, s, "SELECT name FROM t_user WHERE uid = ?", sqltypes.NewInt(int64(uid)))
		if len(rows) != 1 || rows[0][0].S != fmt.Sprintf("user%d", uid) {
			t.Fatalf("uid %d: %v", uid, rows)
		}
	}
	for uid := 1; uid <= 16; uid++ {
		if r := mustExec(t, s, "UPDATE t_user SET age = ? WHERE uid = ?",
			sqltypes.NewInt(int64(100+uid)), sqltypes.NewInt(int64(uid))); r.Affected != 1 {
			t.Fatalf("update uid %d affected %d", uid, r.Affected)
		}
	}
	for uid := 1; uid <= 16; uid++ {
		rows := mustQuery(t, s, "SELECT age FROM t_user WHERE uid = ?", sqltypes.NewInt(int64(uid)))
		if rows[0][0].I != int64(100+uid) {
			t.Fatalf("uid %d age %v", uid, rows)
		}
	}
	if r := mustExec(t, s, "DELETE FROM t_user WHERE uid = ?", sqltypes.NewInt(7)); r.Affected != 1 {
		t.Fatalf("delete affected %d", r.Affected)
	}
	if rows := mustQuery(t, s, "SELECT COUNT(*) FROM t_user"); rows[0][0].I != 15 {
		t.Fatalf("count after delete: %v", rows)
	}
}

func TestPlanCacheMultiNodeShapes(t *testing.T) {
	// Shapes that route to many nodes reuse the cached AST through the full
	// rewriter — still zero parses on the hot path.
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 12)
	mustQuery(t, s, "SELECT COUNT(*) FROM t_user WHERE age > 0") // warm
	n := parses(func() {
		rows := mustQuery(t, s, "SELECT COUNT(*) FROM t_user WHERE age > 200")
		if rows[0][0].I != 0 {
			t.Fatalf("broadcast count: %v", rows)
		}
		rows = mustQuery(t, s, "SELECT COUNT(*) FROM t_user WHERE age > 1")
		if rows[0][0].I != 12 {
			t.Fatalf("broadcast count: %v", rows)
		}
	})
	if n != 0 {
		t.Fatalf("multi-node hot shape parsed %d times", n)
	}
}

func TestPlanCacheForUpdateBypassInTransaction(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 4)
	s.SetTransactionType(transaction.XA)
	mustExec(t, s, "BEGIN")
	// Warm the shape outside suspicion: still inside the tx, each locking
	// read must take the full pipeline (parse every time).
	for i := 0; i < 3; i++ {
		n := parses(func() { mustQuery(t, s, fmt.Sprintf("SELECT name FROM t_user WHERE uid = %d FOR UPDATE", i+1)) })
		if n == 0 {
			t.Fatalf("iteration %d: FOR UPDATE inside XA must bypass the plan cache", i)
		}
	}
	mustExec(t, s, "COMMIT")
	// Outside a transaction the same shape is cacheable (uid 1 and 5 share
	// a shard, so the data node's own statement cache is warm too).
	mustQuery(t, s, "SELECT name FROM t_user WHERE uid = 1 FOR UPDATE")
	n := parses(func() { mustQuery(t, s, "SELECT name FROM t_user WHERE uid = 5 FOR UPDATE") })
	if n != 0 {
		t.Fatalf("FOR UPDATE outside tx parsed %d times", n)
	}
}

func TestPlanCacheInvalidatedByDDL(t *testing.T) {
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 4)
	mustQuery(t, s, "SELECT name FROM t_user WHERE uid = 1") // warm
	epoch := k.PlanCache().Epoch()
	mustExec(t, s, "CREATE TABLE t_extra (id INT PRIMARY KEY)")
	if k.PlanCache().Epoch() == epoch {
		t.Fatal("DDL did not bump the plan-cache epoch")
	}
	// Stale plan dropped: next execution recompiles (parses) and works.
	n := parses(func() {
		rows := mustQuery(t, s, "SELECT name FROM t_user WHERE uid = 2")
		if len(rows) != 1 || rows[0][0].S != "user2" {
			t.Fatalf("post-DDL: %v", rows)
		}
	})
	if n == 0 {
		t.Fatal("stale plan served after DDL epoch bump")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	rules := sharding.NewRuleSet()
	sources := map[string]*resource.DataSource{
		"ds0": resource.NewEmbedded(storage.NewEngine("ds0"), nil),
	}
	rule, err := sharding.BuildAutoRule(sharding.AutoTableSpec{
		LogicTable: "t", Resources: []string{"ds0"},
		ShardingColumn: "id", AlgorithmType: "MOD", ShardingCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rules.AddRule(rule)
	k, err := New(Config{Rules: rules, Sources: sources, PlanCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if k.PlanCache() != nil {
		t.Fatal("negative PlanCacheSize must disable the cache")
	}
	s := k.NewSession()
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO t (id) VALUES (1)")
	for i := 0; i < 2; i++ {
		n := parses(func() { mustQuery(t, s, "SELECT id FROM t WHERE id = 1") })
		if n == 0 {
			t.Fatalf("iteration %d: disabled cache must parse every statement", i)
		}
	}
}

func TestPlanCacheLimitValidationParity(t *testing.T) {
	// The fast path must reproduce the rewriter's LIMIT argument errors.
	k := newKernel(t, 2, 4)
	s := k.NewSession()
	seed(t, s, 4)
	// Warm with a good binding, then fail on a missing one.
	if _, err := s.Query("SELECT name FROM t_user WHERE uid = ? LIMIT ?",
		sqltypes.NewInt(1), sqltypes.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("SELECT name FROM t_user WHERE uid = ? LIMIT ?", sqltypes.NewInt(1)); err == nil {
		t.Fatal("missing LIMIT bind argument must error")
	}
}
