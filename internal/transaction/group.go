package transaction

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// groupCommitter batches concurrent transactions' XA log operations into
// single store writes, amortizing the decision-point sync the way a
// database group-commits its WAL. The design is opportunistic
// leader/follower: the first arriving operation becomes the leader and
// writes immediately — a lone transaction pays zero added latency — while
// operations arriving during that write queue up and ride the leader's
// next batch. An optional accumulation window trades latency for bigger
// batches when the log's sync cost dominates.
type groupCommitter struct {
	store  LogStore
	window atomic.Int64 // extra accumulation before the leader drains (ns)

	mu      sync.Mutex
	pending []logOp
	leading bool

	batches  atomic.Int64 // store round trips
	ops      atomic.Int64 // log operations carried
	maxBatch atomic.Int64
}

// logOp is one queued log operation: a decision record to write, or (rec
// nil) a retired transaction's record to delete.
type logOp struct {
	rec  *LogRecord
	xid  string
	done chan error
}

func newGroupCommitter(store LogStore) *groupCommitter {
	return &groupCommitter{store: store}
}

// setWindow sets the optional accumulation window (0 = purely
// opportunistic batching).
func (g *groupCommitter) setWindow(d time.Duration) { g.window.Store(int64(d)) }

func (g *groupCommitter) write(ctx context.Context, rec LogRecord) error {
	return g.submit(ctx, logOp{rec: &rec})
}

func (g *groupCommitter) delete(ctx context.Context, xid string) error {
	return g.submit(ctx, logOp{xid: xid})
}

// submit enqueues the operation and blocks until a leader has written it.
// The context gates only the enqueue: once queued, the operation is part
// of a batch some leader will flush, so the caller waits for the verdict
// — abandoning it would leave the commit decision's durability unknown.
func (g *groupCommitter) submit(ctx context.Context, op logOp) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	op.done = make(chan error, 1)
	g.mu.Lock()
	g.pending = append(g.pending, op)
	if g.leading {
		g.mu.Unlock()
		return <-op.done
	}
	g.leading = true
	g.mu.Unlock()
	g.lead()
	return <-op.done
}

// lead drains the queue in batches until it is empty, then steps down. A
// follower that arrives after the step-down finds leading false and
// becomes the next leader — there is no standing goroutine and no timer
// to keep idle coordinators busy.
func (g *groupCommitter) lead() {
	if w := time.Duration(g.window.Load()); w > 0 {
		time.Sleep(w)
	}
	for {
		g.mu.Lock()
		batch := g.pending
		g.pending = nil
		if len(batch) == 0 {
			g.leading = false
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()

		var recs []LogRecord
		var dels []string
		for _, op := range batch {
			if op.rec != nil {
				recs = append(recs, *op.rec)
			} else {
				dels = append(dels, op.xid)
			}
		}
		// Writes land before deletes. A batch never carries both for one
		// XID: a transaction's delete is only submitted after its own
		// write returned, and XIDs are never reused.
		var wErr, dErr error
		if len(recs) > 0 {
			wErr = g.store.WriteBatch(recs)
		}
		if len(dels) > 0 {
			dErr = g.store.DeleteBatch(dels)
		}
		for _, op := range batch {
			if op.rec != nil {
				op.done <- wErr
			} else {
				op.done <- dErr
			}
		}
		g.batches.Add(1)
		g.ops.Add(int64(len(batch)))
		for {
			cur := g.maxBatch.Load()
			if int64(len(batch)) <= cur || g.maxBatch.CompareAndSwap(cur, int64(len(batch))) {
				break
			}
		}
	}
}

func (g *groupCommitter) metrics() map[string]int64 {
	return map[string]int64{
		"group_batches":   g.batches.Load(),
		"group_ops":       g.ops.Load(),
		"group_max_batch": g.maxBatch.Load(),
	}
}

// SetGroupCommitWindow configures an accumulation window for the XA log
// group committer: the batch leader waits this long before draining so
// more concurrent commits can join its batch. Zero (the default) batches
// purely opportunistically — a lone commit writes immediately.
func (m *Manager) SetGroupCommitWindow(d time.Duration) { m.group.setWindow(d) }
