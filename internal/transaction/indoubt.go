package transaction

import (
	"fmt"
	"strings"
)

// inDoubtMarker is the wire form's recognizable prefix; the proxy sends
// errors as plain text, so — like admission.OverloadedError — the typed
// outcome rides inside the message and ParseInDoubt re-types it on the
// client side.
const inDoubtMarker = "SS_IN_DOUBT"

// InDoubtError is the typed outcome of a partially failed phase 2: the
// commit decision is logged and some branches committed, but the listed
// branches are still prepared. The transaction WILL commit — Recover
// finishes the stragglers from the log — so retrying the statement would
// double-apply it. The error deliberately does not implement
// Transient() bool: pools and retry layers must treat it as final.
type InDoubtError struct {
	// XID is the global transaction whose phase 2 did not finish.
	XID string
	// Pending lists the branches (data source names) still prepared.
	Pending []string
	// Cause is the first branch failure, when known locally.
	Cause error
}

// Error doubles as the wire encoding (see ParseInDoubt).
func (e *InDoubtError) Error() string {
	s := fmt.Sprintf("%s xid=%s pending=%s: commit decision logged, recovery completes phase 2",
		inDoubtMarker, e.XID, strings.Join(e.Pending, ","))
	if e.Cause != nil {
		s += ": " + e.Cause.Error()
	}
	return s
}

func (e *InDoubtError) Unwrap() error { return e.Cause }

// ParseInDoubt recovers a typed InDoubtError from an error message that
// crossed the wire as text. The Cause does not survive the round trip.
func ParseInDoubt(msg string) (*InDoubtError, bool) {
	i := strings.Index(msg, inDoubtMarker)
	if i < 0 {
		return nil, false
	}
	rest := msg[i+len(inDoubtMarker):]
	if c := strings.IndexByte(rest, ':'); c >= 0 {
		rest = rest[:c]
	}
	e := &InDoubtError{}
	for _, f := range strings.Fields(rest) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "xid":
			e.XID = v
		case "pending":
			if v != "" {
				e.Pending = strings.Split(v, ",")
			}
		}
	}
	if e.XID == "" {
		return nil, false
	}
	return e, true
}
