package transaction

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"shardingsphere/internal/exec"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/sqlparser"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/telemetry"
)

// GlobalStatus is the TC-side state of a BASE global transaction.
type GlobalStatus uint8

// Global transaction states.
const (
	StatusActive GlobalStatus = iota
	StatusCommitted
	StatusRolledBack
)

func (s GlobalStatus) String() string {
	switch s {
	case StatusCommitted:
		return "committed"
	case StatusRolledBack:
		return "rolled-back"
	default:
		return "active"
	}
}

// UndoRecord is one compensation step: SQL that reverses one branch
// statement on one data source.
type UndoRecord struct {
	DataSource string
	SQL        string
}

// GlobalTx is the coordinator's record of one BASE transaction: its
// branches and their undo logs, in execution order.
type GlobalTx struct {
	XID    string
	Status GlobalStatus
	Undo   []UndoRecord
}

// Coordinator is the Transaction Coordinator (TC) of the Seata-style AT
// flow (paper Fig. 5(e)/Fig. 6): it tracks global transactions, the
// branches registered to them, and drives global commit/rollback. It is
// the in-process substitute for a Seata TC server (see DESIGN.md).
type Coordinator struct {
	mu      sync.Mutex
	globals map[string]*GlobalTx
}

// NewCoordinator returns an empty TC.
func NewCoordinator() *Coordinator {
	return &Coordinator{globals: map[string]*GlobalTx{}}
}

// BeginGlobal registers a new global transaction and returns its record.
func (tc *Coordinator) BeginGlobal(xid string) *GlobalTx {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	g := &GlobalTx{XID: xid}
	tc.globals[xid] = g
	return g
}

// RegisterUndo appends a compensation record to the global transaction.
func (tc *Coordinator) RegisterUndo(xid string, rec UndoRecord) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if g, ok := tc.globals[xid]; ok {
		g.Undo = append(g.Undo, rec)
	}
}

// Status reports a global transaction's state.
func (tc *Coordinator) Status(xid string) (GlobalStatus, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	g, ok := tc.globals[xid]
	if !ok {
		return StatusActive, false
	}
	return g.Status, true
}

// finish transitions the transaction and returns its undo list (for
// rollback) while holding the record.
func (tc *Coordinator) finish(xid string, to GlobalStatus) ([]UndoRecord, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	g, ok := tc.globals[xid]
	if !ok {
		return nil, fmt.Errorf("transaction: unknown global transaction %s", xid)
	}
	if g.Status != StatusActive {
		return nil, ErrTxClosed
	}
	g.Status = to
	undo := g.Undo
	g.Undo = nil // phase 2: undo logs are deleted
	return undo, nil
}

// --- BASE transaction ---

type baseTx struct {
	mgr    *Manager
	xid    string
	held   *exec.HeldConns
	global *GlobalTx
	closed bool
	tr     *telemetry.Trace
	// pending holds compensations computed before the statement ran,
	// applied to the TC once the statement (and its local commit) succeed.
	pending []UndoRecord
	inLocal map[string]bool
}

func (t *baseTx) Type() Type                      { return Base }
func (t *baseTx) XID() string                     { return t.xid }
func (t *baseTx) Held() *exec.HeldConns           { return t.held }
func (t *baseTx) AttachTrace(tr *telemetry.Trace) { t.tr = tr }

// BeforeStatement opens a branch-local transaction on every touched
// source and computes the compensation SQL from the current row images
// (the "save the redo and undo logs" step of paper Fig. 6).
func (t *baseTx) BeforeStatement(ctx context.Context, units []rewrite.SQLUnit) error {
	if t.closed {
		return ErrTxClosed
	}
	undoStart := time.Now()
	t.pending = t.pending[:0]
	t.inLocal = map[string]bool{}
	for _, u := range units {
		conn, err := t.held.Get(ctx, t.mgr.exec, u.DataSource)
		if err != nil {
			return err
		}
		if !t.inLocal[u.DataSource] {
			if _, err := conn.Exec(ctx, "BEGIN"); err != nil {
				return err
			}
			t.inLocal[u.DataSource] = true
		}
		undo, err := t.buildUndo(ctx, conn, u)
		if err != nil {
			t.abortLocals(ctx)
			return err
		}
		t.pending = append(t.pending, undo...)
	}
	t.tr.AddSpan(telemetry.StageBaseUndo, "", undoStart, time.Since(undoStart))
	return nil
}

// AfterStatement commits each branch-local transaction (phase 1 of Fig.
// 6: "commit locally, report status to TC") and registers the undo
// records with the TC; on execution error the local work rolls back and
// no undo is kept.
func (t *baseTx) AfterStatement(ctx context.Context, units []rewrite.SQLUnit, execErr error) error {
	if execErr != nil {
		t.abortLocals(ctx)
		return nil
	}
	for ds := range t.inLocal {
		conn, _ := t.held.Peek(ds)
		if _, err := conn.Exec(ctx, "COMMIT"); err != nil {
			conn.Broken = true
			return fmt.Errorf("transaction: BASE local commit failed on %s: %w", ds, err)
		}
	}
	for _, rec := range t.pending {
		t.mgr.tc.RegisterUndo(t.xid, rec)
	}
	t.pending = nil
	t.inLocal = nil
	return nil
}

func (t *baseTx) abortLocals(ctx context.Context) {
	// Branch aborts must run even after the statement deadline fired, or
	// the local transactions would leak their locks back into the pool.
	ctx = context.WithoutCancel(ctx)
	for ds := range t.inLocal {
		if conn, ok := t.held.Peek(ds); ok {
			conn.Exec(ctx, "ROLLBACK")
		}
	}
	t.pending = nil
	t.inLocal = nil
}

// Commit checks status with the TC and deletes the undo logs (phase 2 of
// Fig. 6). Local data is already committed, so this is fast.
func (t *baseTx) Commit(context.Context) error {
	if t.closed {
		return ErrTxClosed
	}
	t.closed = true
	defer t.held.ReleaseAll()
	_, err := t.mgr.tc.finish(t.xid, StatusCommitted)
	return err
}

// Rollback restores data by replaying the compensation SQL in reverse
// order ("restore the data by redo and undo logs").
func (t *baseTx) Rollback(ctx context.Context) error {
	if t.closed {
		return ErrTxClosed
	}
	t.closed = true
	defer t.held.ReleaseAll()
	undo, err := t.mgr.tc.finish(t.xid, StatusRolledBack)
	if err != nil {
		return err
	}
	// Compensation must run to completion once started: a half-replayed
	// undo chain is worse than a late one, so it detaches from the
	// statement deadline.
	ctx = context.WithoutCancel(ctx)
	for i := len(undo) - 1; i >= 0; i-- {
		rec := undo[i]
		conn, err := t.held.Get(ctx, t.mgr.exec, rec.DataSource)
		if err != nil {
			return fmt.Errorf("transaction: BASE compensation lost on %s: %w", rec.DataSource, err)
		}
		if _, err := conn.Exec(ctx, rec.SQL); err != nil {
			return fmt.Errorf("transaction: BASE compensation failed on %s (%s): %w", rec.DataSource, rec.SQL, err)
		}
	}
	return nil
}

// buildUndo computes compensation SQL for one unit by reading the row
// images the statement is about to change.
func (t *baseTx) buildUndo(ctx context.Context, conn *resource.PooledConn, u rewrite.SQLUnit) ([]UndoRecord, error) {
	stmt, err := sqlparser.Parse(u.SQL)
	if err != nil {
		return nil, err
	}
	ser := sqlparser.NewSerializer(sqlparser.DialectMySQL)
	switch s := stmt.(type) {
	case *sqlparser.UpdateStmt:
		return t.undoForUpdateDelete(ctx, conn, u.DataSource, s.Table, s.Where, u.Args, ser, false)
	case *sqlparser.DeleteStmt:
		return t.undoForUpdateDelete(ctx, conn, u.DataSource, s.Table, s.Where, u.Args, ser, true)
	case *sqlparser.InsertStmt:
		return t.undoForInsert(u.DataSource, s, u.Args, ser)
	default:
		return nil, nil // reads and DDL carry no undo
	}
}

// undoForUpdateDelete selects the before image (FOR UPDATE, inside the
// branch-local transaction, so the rows stay locked until local commit)
// and emits one restoring statement per row.
func (t *baseTx) undoForUpdateDelete(ctx context.Context, conn *resource.PooledConn, ds, table string, where sqlparser.Expr, args []sqltypes.Value, ser *sqlparser.Serializer, isDelete bool) ([]UndoRecord, error) {
	pk, cols, err := t.mgr.meta.TableMeta(ds, table)
	if err != nil {
		return nil, err
	}
	// The before-image SELECT keeps only the WHERE clause, so the
	// statement's bind arguments must be projected onto the placeholders
	// that survive (an UPDATE's SET values come first in the arg list and
	// would otherwise bind into the WHERE positions).
	where, whereArgs, err := projectArgs(where, args)
	if err != nil {
		return nil, err
	}
	sel := &sqlparser.SelectStmt{
		Items:     []sqlparser.SelectItem{{Star: true}},
		From:      []sqlparser.TableRef{{Name: table}},
		Where:     where,
		ForUpdate: true,
	}
	rs, err := conn.Query(ctx, ser.Serialize(sel), whereArgs...)
	if err != nil {
		return nil, err
	}
	rows, err := resource.ReadAll(rs)
	if err != nil {
		return nil, err
	}
	var out []UndoRecord
	for _, row := range rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("transaction: before-image width %d != schema %d for %s", len(row), len(cols), table)
		}
		if isDelete {
			out = append(out, UndoRecord{DataSource: ds, SQL: insertSQL(table, cols, row, ser)})
		} else {
			out = append(out, UndoRecord{DataSource: ds, SQL: updateSQL(table, pk, cols, row, ser)})
		}
	}
	return out, nil
}

// projectArgs rebinds an expression extracted from a larger statement:
// placeholders are renumbered from zero in source order and the matching
// argument values are collected, so the expression can run standalone.
// A nil expression needs no work.
func projectArgs(e sqlparser.Expr, args []sqltypes.Value) (sqlparser.Expr, []sqltypes.Value, error) {
	if e == nil {
		return nil, nil, nil
	}
	clone := sqlparser.CloneExpr(e)
	var out []sqltypes.Value
	var missing error
	sqlparser.WalkExpr(clone, func(x sqlparser.Expr) bool {
		p, ok := x.(*sqlparser.Placeholder)
		if !ok {
			return true
		}
		if p.Index >= len(args) {
			missing = fmt.Errorf("transaction: missing bind argument %d", p.Index+1)
			return false
		}
		out = append(out, args[p.Index])
		p.Index = len(out) - 1
		return true
	})
	return clone, out, missing
}

// undoForInsert emits one DELETE per inserted row, keyed on the primary
// key values from the statement itself.
func (t *baseTx) undoForInsert(ds string, stmt *sqlparser.InsertStmt, args []sqltypes.Value, ser *sqlparser.Serializer) ([]UndoRecord, error) {
	pk, cols, err := t.mgr.meta.TableMeta(ds, stmt.Table)
	if err != nil {
		return nil, err
	}
	names := stmt.Columns
	if len(names) == 0 {
		names = cols
	}
	pos := map[string]int{}
	for i, c := range names {
		pos[strings.ToLower(c)] = i
	}
	env := constEnv{args: args}
	var out []UndoRecord
	for _, row := range stmt.Rows {
		var conds []string
		for _, k := range pk {
			i, ok := pos[strings.ToLower(k)]
			if !ok || i >= len(row) {
				return nil, fmt.Errorf("transaction: BASE INSERT into %s must include primary key %s", stmt.Table, k)
			}
			v, err := env.eval(row[i])
			if err != nil {
				return nil, err
			}
			conds = append(conds, fmt.Sprintf("%s = %s", k, v.SQLLiteral()))
		}
		out = append(out, UndoRecord{
			DataSource: ds,
			SQL:        fmt.Sprintf("DELETE FROM %s WHERE %s", stmt.Table, strings.Join(conds, " AND ")),
		})
	}
	return out, nil
}

func insertSQL(table string, cols []string, row sqltypes.Row, _ *sqlparser.Serializer) string {
	vals := make([]string, len(row))
	for i, v := range row {
		vals[i] = v.SQLLiteral()
	}
	return fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
		table, strings.Join(cols, ", "), strings.Join(vals, ", "))
}

func updateSQL(table string, pk, cols []string, row sqltypes.Row, _ *sqlparser.Serializer) string {
	isPK := map[string]bool{}
	for _, k := range pk {
		isPK[strings.ToLower(k)] = true
	}
	var sets, conds []string
	for i, c := range cols {
		lit := row[i].SQLLiteral()
		if isPK[strings.ToLower(c)] {
			conds = append(conds, fmt.Sprintf("%s = %s", c, lit))
		} else {
			sets = append(sets, fmt.Sprintf("%s = %s", c, lit))
		}
	}
	if len(sets) == 0 {
		// Pure-key table: nothing to restore on update.
		return fmt.Sprintf("SELECT 1 FROM %s WHERE 1 = 0", table)
	}
	return fmt.Sprintf("UPDATE %s SET %s WHERE %s",
		table, strings.Join(sets, ", "), strings.Join(conds, " AND "))
}

// constEnv evaluates constant insert expressions.
type constEnv struct {
	args []sqltypes.Value
}

func (e constEnv) eval(x sqlparser.Expr) (sqltypes.Value, error) {
	switch t := x.(type) {
	case *sqlparser.Literal:
		return t.Val, nil
	case *sqlparser.Placeholder:
		if t.Index >= len(e.args) {
			return sqltypes.Null, fmt.Errorf("transaction: missing bind argument %d", t.Index+1)
		}
		return e.args[t.Index], nil
	default:
		return sqltypes.Null, fmt.Errorf("transaction: non-constant INSERT value %T", x)
	}
}
