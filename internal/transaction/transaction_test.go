package transaction

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"shardingsphere/internal/exec"
	"shardingsphere/internal/registry"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/storage"
)

// bg is the tests' root context. The production package threads caller
// contexts everywhere (cleanup detaches via context.WithoutCancel), so
// the only context the tests ever mint is this one.
var bg = context.TODO()

// testMeta serves metadata for the fixture tables.
type testMeta struct{}

func (testMeta) TableMeta(ds, table string) ([]string, []string, error) {
	return []string{"id"}, []string{"id", "v"}, nil
}

// fixture builds two sources each holding table t(id pk, v) with one row.
func fixture(t *testing.T, log LogStore) (*Manager, *exec.Executor) {
	t.Helper()
	sources := map[string]*resource.DataSource{}
	for d := 0; d < 2; d++ {
		eng := storage.NewEngine(fmt.Sprintf("ds%d", d))
		ds := resource.NewEmbedded(eng, nil)
		conn, err := ds.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Exec(bg, "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Exec(bg, fmt.Sprintf("INSERT INTO t VALUES (%d, 0)", d)); err != nil {
			t.Fatal(err)
		}
		conn.Release()
		sources[eng.Name()] = ds
	}
	e := exec.New(sources, 1)
	return NewManager(e, log, testMeta{}), e
}

func unitsBoth(sql string) []rewrite.SQLUnit {
	return []rewrite.SQLUnit{
		{DataSource: "ds0", SQL: sql},
		{DataSource: "ds1", SQL: sql},
	}
}

func unitsOn(ds, sql string) []rewrite.SQLUnit {
	return []rewrite.SQLUnit{{DataSource: ds, SQL: sql}}
}

func readV(t *testing.T, e *exec.Executor, ds string, id int) int64 {
	t.Helper()
	src, err := e.Source(ds)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := src.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Release()
	rs, err := conn.Query(bg, fmt.Sprintf("SELECT v FROM t WHERE id = %d", id))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := resource.ReadAll(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		return -1
	}
	return rows[0][0].I
}

// run drives one distributed statement through a transaction, the way the
// kernel does.
func run(t *testing.T, mgr *Manager, e *exec.Executor, tx Tx, units []rewrite.SQLUnit) {
	t.Helper()
	if err := tx.BeforeStatement(bg, units); err != nil {
		t.Fatal(err)
	}
	_, execErr := e.ExecuteUpdate(units, tx.Held())
	if err := tx.AfterStatement(bg, units, execErr); err != nil {
		t.Fatal(err)
	}
	if execErr != nil {
		t.Fatal(execErr)
	}
}

// sqlRecorder wraps a connection and records every statement that crosses
// it; tests install it as a pool interceptor to prove which verbs a
// commit path actually issued.
type sqlRecorder struct {
	resource.Conn
	mu  *sync.Mutex
	log *[]string
}

func (r sqlRecorder) Exec(ctx context.Context, sql string, args ...sqltypes.Value) (resource.ExecResult, error) {
	r.mu.Lock()
	*r.log = append(*r.log, sql)
	r.mu.Unlock()
	return r.Conn.Exec(ctx, sql, args...)
}

// recordSQL taps every statement executed on the source from now on.
func recordSQL(t *testing.T, e *exec.Executor, ds string) (*sync.Mutex, *[]string) {
	t.Helper()
	src, err := e.Source(ds)
	if err != nil {
		t.Fatal(err)
	}
	mu := &sync.Mutex{}
	log := &[]string{}
	src.SetConnInterceptor(func(c resource.Conn) resource.Conn {
		return sqlRecorder{Conn: c, mu: mu, log: log}
	})
	return mu, log
}

func recorded(mu *sync.Mutex, log *[]string) []string {
	mu.Lock()
	defer mu.Unlock()
	return append([]string(nil), *log...)
}

func TestParseType(t *testing.T) {
	for s, want := range map[string]Type{"local": Local, "XA": XA, "base": Base} {
		got, err := ParseType(s)
		if err != nil || got != want {
			t.Fatalf("ParseType(%s) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseType("nope"); err == nil {
		t.Fatal("bad type accepted")
	}
	if Local.String() != "LOCAL" || XA.String() != "XA" || Base.String() != "BASE" {
		t.Fatal("type names")
	}
}

func TestLocalCommitSpansSources(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, err := mgr.Begin(Local)
	if err != nil {
		t.Fatal(err)
	}
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 7"))
	// Uncommitted: fresh connections see the old value.
	if readV(t, e, "ds0", 0) != 0 || readV(t, e, "ds1", 1) != 0 {
		t.Fatal("local tx leaked before commit")
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 7 || readV(t, e, "ds1", 1) != 7 {
		t.Fatal("local commit lost")
	}
	if err := tx.Commit(bg); !errors.Is(err, ErrTxClosed) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestLocalRollback(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(Local)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 7"))
	if err := tx.Rollback(bg); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 0 || readV(t, e, "ds1", 1) != 0 {
		t.Fatal("local rollback lost")
	}
}

func TestXACommit(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 9"))
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 9 || readV(t, e, "ds1", 1) != 9 {
		t.Fatal("xa commit lost")
	}
	// Log cleaned up.
	recs, _ := mgr.log.List()
	if len(recs) != 0 {
		t.Fatalf("log lingers: %v", recs)
	}
	m := mgr.Metrics()
	if m["xa_commits"] != 1 || m["fastpath_commits"] != 0 {
		t.Fatalf("metrics: %v", m)
	}
}

func TestXARollback(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 9"))
	if err := tx.Rollback(bg); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 0 || readV(t, e, "ds1", 1) != 0 {
		t.Fatal("xa rollback lost")
	}
	if mgr.Metrics()["xa_rollbacks"] != 1 {
		t.Fatalf("metrics: %v", mgr.Metrics())
	}
}

// TestFastPathSingleShardNoXAVerbs proves the tentpole's fast path: a
// transaction that only ever touches one data source commits as plain
// BEGIN/COMMIT — no XA verb on the wire, no log record, and the
// fastpath_commits counter (the observable SHOW TRANSACTION METRICS
// proof) ticks.
func TestFastPathSingleShardNoXAVerbs(t *testing.T) {
	mgr, e := fixture(t, nil)
	mu, log := recordSQL(t, e, "ds0")
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsOn("ds0", "UPDATE t SET v = 3"))
	run(t, mgr, e, tx, unitsOn("ds0", "UPDATE t SET v = v + 1"))
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	if got := readV(t, e, "ds0", 0); got != 4 {
		t.Fatalf("fast-path commit lost: v=%d", got)
	}
	for _, sql := range recorded(mu, log) {
		if strings.HasPrefix(sql, "XA ") {
			t.Fatalf("single-shard transaction issued an XA verb: %q", sql)
		}
	}
	recs, _ := mgr.log.List()
	if len(recs) != 0 {
		t.Fatalf("fast path wrote a log record: %v", recs)
	}
	m := mgr.Metrics()
	if m["fastpath_commits"] != 1 || m["xa_commits"] != 0 || m["upgrades"] != 0 {
		t.Fatalf("metrics: %v", m)
	}
	if m["group_ops"] != 0 {
		t.Fatalf("fast path went through the group committer: %v", m)
	}
	if err := tx.Commit(bg); !errors.Is(err, ErrTxClosed) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestFastPathRollback(t *testing.T) {
	mgr, e := fixture(t, nil)
	mu, log := recordSQL(t, e, "ds0")
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsOn("ds0", "UPDATE t SET v = 3"))
	if err := tx.Rollback(bg); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 0 {
		t.Fatal("fast-path rollback lost")
	}
	for _, sql := range recorded(mu, log) {
		if strings.HasPrefix(sql, "XA ") {
			t.Fatalf("single-shard rollback issued an XA verb: %q", sql)
		}
	}
}

// TestLazyUpgradeToXA drives the fast path across its promotion: the
// first statement stays local on ds0, the second touches ds1 too, so the
// ds0 branch is adopted into the XA transaction (XA ADOPT) and the whole
// commit runs 2PC.
func TestLazyUpgradeToXA(t *testing.T) {
	mgr, e := fixture(t, nil)
	mu, log := recordSQL(t, e, "ds0")
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsOn("ds0", "UPDATE t SET v = 5"))
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = v + 1"))
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 6 || readV(t, e, "ds1", 1) != 1 {
		t.Fatal("upgraded commit lost")
	}
	adopt := fmt.Sprintf("XA ADOPT '%s'", tx.XID())
	var sawAdopt, sawXABegin bool
	for _, sql := range recorded(mu, log) {
		if sql == adopt {
			sawAdopt = true
		}
		if strings.HasPrefix(sql, "XA BEGIN") {
			sawXABegin = true
		}
	}
	if !sawAdopt {
		t.Fatal("ds0 branch was never adopted into the XA transaction")
	}
	if sawXABegin {
		t.Fatal("ds0 should upgrade via ADOPT, not reopen with XA BEGIN")
	}
	m := mgr.Metrics()
	if m["upgrades"] != 1 || m["xa_commits"] != 1 || m["fastpath_commits"] != 0 {
		t.Fatalf("metrics: %v", m)
	}
	recs, _ := mgr.log.List()
	if len(recs) != 0 {
		t.Fatalf("log lingers: %v", recs)
	}
}

func TestXAPrepareFailureRollsBack(t *testing.T) {
	// A second prepared XID with the same name forces a prepare failure on
	// ds0; the whole global transaction must roll back.
	mgr, e := fixture(t, nil)

	// Park a prepared branch with the XID the next transaction will get.
	src, _ := e.Source("ds0")
	conn, _ := src.Acquire()
	if _, err := conn.Exec(bg, "XA BEGIN 'gtx-1'"); err != nil {
		t.Fatal(err)
	}
	// Touch a row the transaction under test will not lock.
	if _, err := conn.Exec(bg, "INSERT INTO t (id, v) VALUES (50, 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(bg, "XA END 'gtx-1'"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(bg, "XA PREPARE 'gtx-1'"); err != nil {
		t.Fatal(err)
	}
	conn.Release()

	tx, _ := mgr.Begin(XA) // xid gtx-1 (fresh manager sequence)
	if tx.XID() != "gtx-1" {
		t.Skipf("xid scheme changed: %s", tx.XID())
	}
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 9"))
	err := tx.Commit(bg)
	if err == nil {
		t.Fatal("commit should fail on duplicate XID prepare")
	}
	var id *InDoubtError
	if errors.As(err, &id) {
		t.Fatalf("prepare failure is a clean abort, not in-doubt: %v", err)
	}
	// Neither source shows the update (ds1's branch rolled back too).
	if readV(t, e, "ds1", 1) != 0 {
		t.Fatal("xa abort incomplete")
	}
	if mgr.Metrics()["prepare_failures"] != 1 {
		t.Fatalf("metrics: %v", mgr.Metrics())
	}
	// The spurious prepare failure must not poison the pools: freshly
	// acquired connections on both sources keep working.
	for _, ds := range []string{"ds0", "ds1"} {
		s, _ := e.Source(ds)
		c, err := s.Acquire()
		if err != nil {
			t.Fatalf("pool %s unusable after aborted prepare: %v", ds, err)
		}
		if _, err := c.Exec(bg, "UPDATE t SET v = v"); err != nil {
			t.Fatalf("conn on %s broken after aborted prepare: %v", ds, err)
		}
		c.Release()
	}
}

// TestCommitHonorsDeadline: a statement deadline that already fired makes
// Commit fail fast instead of committing half a transaction — and the
// abort still reaches the branches (cleanup detaches from the dead
// context), so nothing stays locked or half-applied.
func TestCommitHonorsDeadline(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 9"))
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if err := tx.Commit(ctx); err == nil {
		t.Fatal("commit with expired context succeeded")
	}
	if readV(t, e, "ds0", 0) != 0 || readV(t, e, "ds1", 1) != 0 {
		t.Fatal("expired commit leaked data")
	}

	// Fast path too: the single branch rolls back, the row is untouched.
	tx2, _ := mgr.Begin(XA)
	run(t, mgr, e, tx2, unitsOn("ds0", "UPDATE t SET v = 8"))
	if err := tx2.Commit(ctx); err == nil {
		t.Fatal("fast-path commit with expired context succeeded")
	}
	if readV(t, e, "ds0", 0) != 0 {
		t.Fatal("expired fast-path commit leaked data")
	}
	// The aborted branches left their rows unlocked: a fresh write works.
	src, _ := e.Source("ds0")
	c, _ := src.Acquire()
	if _, err := c.Exec(bg, "UPDATE t SET v = 1 WHERE id = 0"); err != nil {
		t.Fatalf("row still locked after deadline abort: %v", err)
	}
	c.Release()
}

// TestCrashAfterPrepareAborts: the coordinator dies after phase 1 but
// before the decision is logged. Presumed abort: recovery rolls the
// prepared branches back and the data never appears.
func TestCrashAfterPrepareAborts(t *testing.T) {
	mgr, e := fixture(t, nil)
	armed := true
	mgr.SetCrashHook(func(point string) bool {
		if armed && point == CrashAfterPrepare {
			armed = false
			return true
		}
		return false
	})
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 9"))
	err := tx.Commit(bg)
	if err == nil {
		t.Fatal("crashed commit returned nil")
	}
	var id *InDoubtError
	if errors.As(err, &id) {
		t.Fatalf("undecided crash must not be in-doubt: %v", err)
	}
	n, err := mgr.Recover(bg)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing recovered")
	}
	if readV(t, e, "ds0", 0) != 0 || readV(t, e, "ds1", 1) != 0 {
		t.Fatal("presumed abort failed: data visible")
	}
}

// TestInDoubtTypedErrorAndRecovery: the coordinator dies after the
// decision-point log write. The caller gets the typed InDoubtError (not
// a silent nil), and Recover completes phase 2 exactly once.
func TestInDoubtTypedErrorAndRecovery(t *testing.T) {
	reg := registry.New()
	mgr, e := fixture(t, NewRegistryLog(reg, "/transactions"))
	armed := true
	mgr.SetCrashHook(func(point string) bool {
		if armed && point == CrashAfterLogWrite {
			armed = false
			return true
		}
		return false
	})
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 9"))
	err := tx.Commit(bg)
	if err == nil {
		t.Fatal("in-doubt commit returned nil")
	}
	var id *InDoubtError
	if !errors.As(err, &id) {
		t.Fatalf("want InDoubtError, got %v", err)
	}
	if id.XID != tx.XID() || len(id.Pending) != 2 {
		t.Fatalf("in-doubt details: %+v", id)
	}
	if mgr.Metrics()["in_doubt"] != 1 {
		t.Fatalf("metrics: %v", mgr.Metrics())
	}

	// A "new" coordinator over the same registry completes the commit.
	mgr2 := NewManager(e, NewRegistryLog(reg, "/transactions"), testMeta{})
	n, err := mgr2.Recover(bg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d transactions, want 1", n)
	}
	if readV(t, e, "ds0", 0) != 9 || readV(t, e, "ds1", 1) != 9 {
		t.Fatal("recovery did not complete the decided commit")
	}
	// Exactly once: a second pass finds nothing left to resolve.
	if n, _ := mgr2.Recover(bg); n != 0 {
		t.Fatalf("second recovery resolved %d", n)
	}
	recs, _ := mgr2.log.List()
	if len(recs) != 0 {
		t.Fatalf("log lingers: %v", recs)
	}
}

// TestGroupCommitConcurrentRace hammers the group committer: many
// concurrent cross-shard commits over a sync-cost-modeling log. Every
// transaction must land durably, the log must end empty, and the batches
// must actually amortize (fewer store round trips than log operations).
// Run under -race this doubles as the group committer's race test.
func TestGroupCommitConcurrentRace(t *testing.T) {
	const n = 48
	mgr, e := fixture(t, NewDurableLog(NewMemoryLog(), time.Millisecond))
	start := make(chan struct{})
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			tx, err := mgr.Begin(XA)
			if err != nil {
				errs[i] = err
				return
			}
			units := []rewrite.SQLUnit{
				{DataSource: "ds0", SQL: fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", 1000+i, i)},
				{DataSource: "ds1", SQL: fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", 1000+i, i)},
			}
			if err := tx.BeforeStatement(bg, units); err != nil {
				errs[i] = err
				return
			}
			if _, err := e.ExecuteUpdate(units, tx.Held()); err != nil {
				errs[i] = err
				tx.Rollback(bg)
				return
			}
			errs[i] = tx.Commit(bg)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if readV(t, e, "ds0", 1000+i) != int64(i) || readV(t, e, "ds1", 1000+i) != int64(i) {
			t.Fatalf("tx %d not durable", i)
		}
	}
	recs, _ := mgr.log.List()
	if len(recs) != 0 {
		t.Fatalf("log lingers: %v", recs)
	}
	m := mgr.Metrics()
	if m["xa_commits"] != n {
		t.Fatalf("metrics: %v", m)
	}
	// Each commit submits one write and one delete; grouping means fewer
	// store round trips than operations.
	if m["group_ops"] != 2*n {
		t.Fatalf("group_ops = %d, want %d", m["group_ops"], 2*n)
	}
	if m["group_batches"] >= m["group_ops"] {
		t.Fatalf("group commit never batched: %d batches for %d ops", m["group_batches"], m["group_ops"])
	}
	if m["group_max_batch"] < 2 {
		t.Fatalf("max batch %d", m["group_max_batch"])
	}
}

// TestLegacyCommitPath keeps the benchmark baseline honest: with legacy
// mode on, even a single-shard transaction runs full XA and writes its
// own log record.
func TestLegacyCommitPath(t *testing.T) {
	mgr, e := fixture(t, nil)
	mgr.SetLegacyCommit(true)
	mu, log := recordSQL(t, e, "ds0")
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsOn("ds0", "UPDATE t SET v = 3"))
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 3 {
		t.Fatal("legacy commit lost")
	}
	var sawPrepare bool
	for _, sql := range recorded(mu, log) {
		if strings.HasPrefix(sql, "XA PREPARE") {
			sawPrepare = true
		}
	}
	if !sawPrepare {
		t.Fatal("legacy mode skipped 2PC")
	}
	m := mgr.Metrics()
	if m["fastpath_commits"] != 0 || m["xa_commits"] != 1 || m["group_ops"] != 0 {
		t.Fatalf("metrics: %v", m)
	}
}

func TestXARecoveryCommitsDecided(t *testing.T) {
	reg := registry.New()
	log := NewRegistryLog(reg, "/transactions")
	mgr, e := fixture(t, log)

	// Simulate a coordinator crash after the decision: prepare branches by
	// hand and write a decided log record.
	for _, ds := range []string{"ds0", "ds1"} {
		src, _ := e.Source(ds)
		conn, _ := src.Acquire()
		conn.Exec(bg, "XA BEGIN 'crash-1'")
		conn.Exec(bg, "UPDATE t SET v = 42")
		conn.Exec(bg, "XA END 'crash-1'")
		if _, err := conn.Exec(bg, "XA PREPARE 'crash-1'"); err != nil {
			t.Fatal(err)
		}
		conn.Release()
	}
	log.Write(LogRecord{XID: "crash-1", Branches: []string{"ds0", "ds1"}, Decided: true})

	// A "new" coordinator (same registry) recovers and commits.
	mgr2 := NewManager(e, NewRegistryLog(reg, "/transactions"), testMeta{})
	n, err := mgr2.Recover(bg)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing recovered")
	}
	if readV(t, e, "ds0", 0) != 42 || readV(t, e, "ds1", 1) != 42 {
		t.Fatal("recovery did not commit decided branches")
	}
	recs, _ := mgr2.log.List()
	if len(recs) != 0 {
		t.Fatalf("log lingers: %v", recs)
	}
	_ = mgr
}

func TestXARecoveryAbortsUndecided(t *testing.T) {
	mgr, e := fixture(t, nil)
	// Prepared branch with no log record: presumed abort.
	src, _ := e.Source("ds0")
	conn, _ := src.Acquire()
	conn.Exec(bg, "XA BEGIN 'orphan-1'")
	conn.Exec(bg, "UPDATE t SET v = 13")
	conn.Exec(bg, "XA END 'orphan-1'")
	if _, err := conn.Exec(bg, "XA PREPARE 'orphan-1'"); err != nil {
		t.Fatal(err)
	}
	conn.Release()

	n, err := mgr.Recover(bg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered: %d", n)
	}
	if readV(t, e, "ds0", 0) != 0 {
		t.Fatal("orphan branch committed")
	}
}

func TestParseInDoubtRoundTrip(t *testing.T) {
	in := &InDoubtError{XID: "gtx-7", Pending: []string{"ds1", "ds3"},
		Cause: errors.New("branch ds1: connection reset")}
	// The wire form is just the message; a proxy prefix must not break it.
	msg := "remote server error: " + in.Error()
	out, ok := ParseInDoubt(msg)
	if !ok {
		t.Fatalf("round trip failed: %q", msg)
	}
	if out.XID != "gtx-7" || len(out.Pending) != 2 || out.Pending[0] != "ds1" || out.Pending[1] != "ds3" {
		t.Fatalf("parsed: %+v", out)
	}
	if out.Cause != nil {
		t.Fatal("cause should not survive the wire")
	}
	// No pending list still parses (all branches may have raced to done).
	if got, ok := ParseInDoubt((&InDoubtError{XID: "x"}).Error()); !ok || got.XID != "x" {
		t.Fatalf("minimal form: %+v %v", got, ok)
	}
	if _, ok := ParseInDoubt("ordinary error"); ok {
		t.Fatal("false positive")
	}
	if _, ok := ParseInDoubt(inDoubtMarker + " pending=ds0: no xid"); ok {
		t.Fatal("missing xid accepted")
	}
}

func TestBaseCommit(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, err := mgr.Begin(Base)
	if err != nil {
		t.Fatal(err)
	}
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 5"))
	// BASE commits locally in phase 1: other connections see it already.
	if readV(t, e, "ds0", 0) != 5 || readV(t, e, "ds1", 1) != 5 {
		t.Fatal("BASE phase-1 local commit missing")
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	st, ok := mgr.Coordinator().Status(tx.XID())
	if !ok || st != StatusCommitted {
		t.Fatalf("tc status: %v %v", st, ok)
	}
}

func TestBaseRollbackCompensates(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(Base)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 5"))
	run(t, mgr, e, tx, []rewrite.SQLUnit{{DataSource: "ds0", SQL: "INSERT INTO t (id, v) VALUES (100, 1)"}})
	run(t, mgr, e, tx, []rewrite.SQLUnit{{DataSource: "ds1", SQL: "DELETE FROM t WHERE id = 1"}})
	// All locally committed.
	if readV(t, e, "ds0", 100) != 1 || readV(t, e, "ds1", 1) != -1 {
		t.Fatal("BASE local effects missing")
	}
	if err := tx.Rollback(bg); err != nil {
		t.Fatal(err)
	}
	// Compensations restore everything.
	if got := readV(t, e, "ds0", 0); got != 0 {
		t.Fatalf("update compensation: v=%d", got)
	}
	if got := readV(t, e, "ds1", 1); got != 0 {
		t.Fatalf("delete compensation: v=%d", got)
	}
	if readV(t, e, "ds0", 100) != -1 {
		t.Fatal("insert compensation: row still there")
	}
	st, _ := mgr.Coordinator().Status(tx.XID())
	if st != StatusRolledBack {
		t.Fatalf("tc status: %v", st)
	}
}

func TestBaseInsertWithPlaceholders(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(Base)
	units := []rewrite.SQLUnit{{
		DataSource: "ds0",
		SQL:        "INSERT INTO t (id, v) VALUES (?, ?)",
		Args:       []sqltypes.Value{sqltypes.NewInt(200), sqltypes.NewInt(3)},
	}}
	run(t, mgr, e, tx, units)
	if err := tx.Rollback(bg); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 200) != -1 {
		t.Fatal("placeholder insert not compensated")
	}
}

func TestBaseNeedsMeta(t *testing.T) {
	sources := map[string]*resource.DataSource{}
	eng := storage.NewEngine("ds0")
	sources["ds0"] = resource.NewEmbedded(eng, nil)
	mgr := NewManager(exec.New(sources, 1), nil, nil)
	if _, err := mgr.Begin(Base); err == nil {
		t.Fatal("BASE without meta must fail")
	}
}

func TestRegistryLogRoundTrip(t *testing.T) {
	reg := registry.New()
	log := NewRegistryLog(reg, "/tx")
	rec := LogRecord{XID: "x1", Branches: []string{"ds0"}, Decided: true}
	if err := log.Write(rec); err != nil {
		t.Fatal(err)
	}
	recs, err := log.List()
	if err != nil || len(recs) != 1 || recs[0].XID != "x1" || !recs[0].Decided {
		t.Fatalf("list: %v %v", recs, err)
	}
	if err := log.Delete("x1"); err != nil {
		t.Fatal(err)
	}
	if err := log.Delete("x1"); err != nil {
		t.Fatal("idempotent delete")
	}
	recs, _ = log.List()
	if len(recs) != 0 {
		t.Fatalf("lingering: %v", recs)
	}
	// Batch variants: one registry round trip for many records.
	if err := log.WriteBatch([]LogRecord{
		{XID: "b1", Branches: []string{"ds0"}, Decided: true},
		{XID: "b2", Branches: []string{"ds1"}, Decided: true},
	}); err != nil {
		t.Fatal(err)
	}
	recs, _ = log.List()
	if len(recs) != 2 {
		t.Fatalf("batch write: %v", recs)
	}
	if err := log.DeleteBatch([]string{"b1", "b2", "missing"}); err != nil {
		t.Fatal(err)
	}
	recs, _ = log.List()
	if len(recs) != 0 {
		t.Fatalf("batch delete: %v", recs)
	}
}

func TestUndoSQLGeneration(t *testing.T) {
	row := sqltypes.Row{sqltypes.NewInt(7), sqltypes.NewString("x'y")}
	ins := insertSQL("t", []string{"id", "v"}, row, nil)
	if ins != "INSERT INTO t (id, v) VALUES (7, 'x''y')" {
		t.Fatalf("insert undo: %s", ins)
	}
	up := updateSQL("t", []string{"id"}, []string{"id", "v"}, row, nil)
	if !strings.Contains(up, "SET v = 'x''y'") || !strings.Contains(up, "WHERE id = 7") {
		t.Fatalf("update undo: %s", up)
	}
}
