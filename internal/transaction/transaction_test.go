package transaction

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"shardingsphere/internal/exec"
	"shardingsphere/internal/registry"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/storage"
)

// testMeta serves metadata for the fixture tables.
type testMeta struct{}

func (testMeta) TableMeta(ds, table string) ([]string, []string, error) {
	return []string{"id"}, []string{"id", "v"}, nil
}

// fixture builds two sources each holding table t(id pk, v) with one row.
func fixture(t *testing.T, log LogStore) (*Manager, *exec.Executor) {
	t.Helper()
	sources := map[string]*resource.DataSource{}
	for d := 0; d < 2; d++ {
		eng := storage.NewEngine(fmt.Sprintf("ds%d", d))
		ds := resource.NewEmbedded(eng, nil)
		conn, err := ds.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Exec(context.Background(), "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Exec(context.Background(), fmt.Sprintf("INSERT INTO t VALUES (%d, 0)", d)); err != nil {
			t.Fatal(err)
		}
		conn.Release()
		sources[eng.Name()] = ds
	}
	e := exec.New(sources, 1)
	return NewManager(e, log, testMeta{}), e
}

func unitsBoth(sql string) []rewrite.SQLUnit {
	return []rewrite.SQLUnit{
		{DataSource: "ds0", SQL: sql},
		{DataSource: "ds1", SQL: sql},
	}
}

func readV(t *testing.T, e *exec.Executor, ds string, id int) int64 {
	t.Helper()
	src, err := e.Source(ds)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := src.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Release()
	rs, err := conn.Query(context.Background(), fmt.Sprintf("SELECT v FROM t WHERE id = %d", id))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := resource.ReadAll(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		return -1
	}
	return rows[0][0].I
}

// run drives one distributed statement through a transaction, the way the
// kernel does.
func run(t *testing.T, mgr *Manager, e *exec.Executor, tx Tx, units []rewrite.SQLUnit) {
	t.Helper()
	if err := tx.BeforeStatement(units); err != nil {
		t.Fatal(err)
	}
	_, execErr := e.ExecuteUpdate(units, tx.Held())
	if err := tx.AfterStatement(units, execErr); err != nil {
		t.Fatal(err)
	}
	if execErr != nil {
		t.Fatal(execErr)
	}
}

func TestParseType(t *testing.T) {
	for s, want := range map[string]Type{"local": Local, "XA": XA, "base": Base} {
		got, err := ParseType(s)
		if err != nil || got != want {
			t.Fatalf("ParseType(%s) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseType("nope"); err == nil {
		t.Fatal("bad type accepted")
	}
	if Local.String() != "LOCAL" || XA.String() != "XA" || Base.String() != "BASE" {
		t.Fatal("type names")
	}
}

func TestLocalCommitSpansSources(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, err := mgr.Begin(Local)
	if err != nil {
		t.Fatal(err)
	}
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 7"))
	// Uncommitted: fresh connections see the old value.
	if readV(t, e, "ds0", 0) != 0 || readV(t, e, "ds1", 1) != 0 {
		t.Fatal("local tx leaked before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 7 || readV(t, e, "ds1", 1) != 7 {
		t.Fatal("local commit lost")
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxClosed) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestLocalRollback(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(Local)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 7"))
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 0 || readV(t, e, "ds1", 1) != 0 {
		t.Fatal("local rollback lost")
	}
}

func TestXACommit(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 9"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 9 || readV(t, e, "ds1", 1) != 9 {
		t.Fatal("xa commit lost")
	}
	// Log cleaned up.
	recs, _ := mgr.log.List()
	if len(recs) != 0 {
		t.Fatalf("log lingers: %v", recs)
	}
}

func TestXARollback(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(XA)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 9"))
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 0) != 0 || readV(t, e, "ds1", 1) != 0 {
		t.Fatal("xa rollback lost")
	}
}

func TestXAPrepareFailureRollsBack(t *testing.T) {
	// A second prepared XID with the same name forces a prepare failure on
	// ds0; the whole global transaction must roll back.
	mgr, e := fixture(t, nil)

	// Park a prepared branch with the XID the next transaction will get.
	src, _ := e.Source("ds0")
	conn, _ := src.Acquire()
	if _, err := conn.Exec(context.Background(), "XA BEGIN 'gtx-1'"); err != nil {
		t.Fatal(err)
	}
	// Touch a row the transaction under test will not lock.
	if _, err := conn.Exec(context.Background(), "INSERT INTO t (id, v) VALUES (50, 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(context.Background(), "XA END 'gtx-1'"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(context.Background(), "XA PREPARE 'gtx-1'"); err != nil {
		t.Fatal(err)
	}
	conn.Release()

	tx, _ := mgr.Begin(XA) // xid gtx-1 (fresh manager sequence)
	if tx.XID() != "gtx-1" {
		t.Skipf("xid scheme changed: %s", tx.XID())
	}
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 9"))
	if err := tx.Commit(); err == nil {
		t.Fatal("commit should fail on duplicate XID prepare")
	}
	// Neither source shows the update (ds1's branch rolled back too).
	if readV(t, e, "ds1", 1) != 0 {
		t.Fatal("xa abort incomplete")
	}
}

func TestXARecoveryCommitsDecided(t *testing.T) {
	reg := registry.New()
	log := NewRegistryLog(reg, "/transactions")
	mgr, e := fixture(t, log)

	// Simulate a coordinator crash after the decision: prepare branches by
	// hand and write a decided log record.
	for _, ds := range []string{"ds0", "ds1"} {
		src, _ := e.Source(ds)
		conn, _ := src.Acquire()
		conn.Exec(context.Background(), "XA BEGIN 'crash-1'")
		conn.Exec(context.Background(), "UPDATE t SET v = 42")
		conn.Exec(context.Background(), "XA END 'crash-1'")
		if _, err := conn.Exec(context.Background(), "XA PREPARE 'crash-1'"); err != nil {
			t.Fatal(err)
		}
		conn.Release()
	}
	log.Write(LogRecord{XID: "crash-1", Branches: []string{"ds0", "ds1"}, Decided: true})

	// A "new" coordinator (same registry) recovers and commits.
	mgr2 := NewManager(e, NewRegistryLog(reg, "/transactions"), testMeta{})
	n, err := mgr2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing recovered")
	}
	if readV(t, e, "ds0", 0) != 42 || readV(t, e, "ds1", 1) != 42 {
		t.Fatal("recovery did not commit decided branches")
	}
	recs, _ := mgr2.log.List()
	if len(recs) != 0 {
		t.Fatalf("log lingers: %v", recs)
	}
	_ = mgr
}

func TestXARecoveryAbortsUndecided(t *testing.T) {
	mgr, e := fixture(t, nil)
	// Prepared branch with no log record: presumed abort.
	src, _ := e.Source("ds0")
	conn, _ := src.Acquire()
	conn.Exec(context.Background(), "XA BEGIN 'orphan-1'")
	conn.Exec(context.Background(), "UPDATE t SET v = 13")
	conn.Exec(context.Background(), "XA END 'orphan-1'")
	if _, err := conn.Exec(context.Background(), "XA PREPARE 'orphan-1'"); err != nil {
		t.Fatal(err)
	}
	conn.Release()

	n, err := mgr.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered: %d", n)
	}
	if readV(t, e, "ds0", 0) != 0 {
		t.Fatal("orphan branch committed")
	}
}

func TestBaseCommit(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, err := mgr.Begin(Base)
	if err != nil {
		t.Fatal(err)
	}
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 5"))
	// BASE commits locally in phase 1: other connections see it already.
	if readV(t, e, "ds0", 0) != 5 || readV(t, e, "ds1", 1) != 5 {
		t.Fatal("BASE phase-1 local commit missing")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st, ok := mgr.Coordinator().Status(tx.XID())
	if !ok || st != StatusCommitted {
		t.Fatalf("tc status: %v %v", st, ok)
	}
}

func TestBaseRollbackCompensates(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(Base)
	run(t, mgr, e, tx, unitsBoth("UPDATE t SET v = 5"))
	run(t, mgr, e, tx, []rewrite.SQLUnit{{DataSource: "ds0", SQL: "INSERT INTO t (id, v) VALUES (100, 1)"}})
	run(t, mgr, e, tx, []rewrite.SQLUnit{{DataSource: "ds1", SQL: "DELETE FROM t WHERE id = 1"}})
	// All locally committed.
	if readV(t, e, "ds0", 100) != 1 || readV(t, e, "ds1", 1) != -1 {
		t.Fatal("BASE local effects missing")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Compensations restore everything.
	if got := readV(t, e, "ds0", 0); got != 0 {
		t.Fatalf("update compensation: v=%d", got)
	}
	if got := readV(t, e, "ds1", 1); got != 0 {
		t.Fatalf("delete compensation: v=%d", got)
	}
	if readV(t, e, "ds0", 100) != -1 {
		t.Fatal("insert compensation: row still there")
	}
	st, _ := mgr.Coordinator().Status(tx.XID())
	if st != StatusRolledBack {
		t.Fatalf("tc status: %v", st)
	}
}

func TestBaseInsertWithPlaceholders(t *testing.T) {
	mgr, e := fixture(t, nil)
	tx, _ := mgr.Begin(Base)
	units := []rewrite.SQLUnit{{
		DataSource: "ds0",
		SQL:        "INSERT INTO t (id, v) VALUES (?, ?)",
		Args:       []sqltypes.Value{sqltypes.NewInt(200), sqltypes.NewInt(3)},
	}}
	run(t, mgr, e, tx, units)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if readV(t, e, "ds0", 200) != -1 {
		t.Fatal("placeholder insert not compensated")
	}
}

func TestBaseNeedsMeta(t *testing.T) {
	sources := map[string]*resource.DataSource{}
	eng := storage.NewEngine("ds0")
	sources["ds0"] = resource.NewEmbedded(eng, nil)
	mgr := NewManager(exec.New(sources, 1), nil, nil)
	if _, err := mgr.Begin(Base); err == nil {
		t.Fatal("BASE without meta must fail")
	}
}

func TestRegistryLogRoundTrip(t *testing.T) {
	reg := registry.New()
	log := NewRegistryLog(reg, "/tx")
	rec := LogRecord{XID: "x1", Branches: []string{"ds0"}, Decided: true}
	if err := log.Write(rec); err != nil {
		t.Fatal(err)
	}
	recs, err := log.List()
	if err != nil || len(recs) != 1 || recs[0].XID != "x1" || !recs[0].Decided {
		t.Fatalf("list: %v %v", recs, err)
	}
	if err := log.Delete("x1"); err != nil {
		t.Fatal(err)
	}
	if err := log.Delete("x1"); err != nil {
		t.Fatal("idempotent delete")
	}
	recs, _ = log.List()
	if len(recs) != 0 {
		t.Fatalf("lingering: %v", recs)
	}
}

func TestUndoSQLGeneration(t *testing.T) {
	row := sqltypes.Row{sqltypes.NewInt(7), sqltypes.NewString("x'y")}
	ins := insertSQL("t", []string{"id", "v"}, row, nil)
	if ins != "INSERT INTO t (id, v) VALUES (7, 'x''y')" {
		t.Fatalf("insert undo: %s", ins)
	}
	up := updateSQL("t", []string{"id"}, []string{"id", "v"}, row, nil)
	if !strings.Contains(up, "SET v = 'x''y'") || !strings.Contains(up, "WHERE id = 7") {
		t.Fatalf("update undo: %s", up)
	}
}
