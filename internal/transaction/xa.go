package transaction

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"shardingsphere/internal/exec"
	"shardingsphere/internal/registry"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/telemetry"
)

// LogRecord is one XA transaction-log entry: the set of branches and
// whether the commit decision was taken. Its presence without Decided
// means "roll the branches back"; with Decided it means "commit them" —
// the standard presumed-abort protocol.
type LogRecord struct {
	XID      string   `json:"xid"`
	Branches []string `json:"branches"` // data source names
	Decided  bool     `json:"decided"`  // commit decision logged
}

// LogStore persists XA transaction logs; the registry-backed
// implementation survives a coordinator restart (the paper's recovery
// after "the server is down or the network jitters"). The batch variants
// let the group committer retire many concurrent transactions' records in
// one store operation.
type LogStore interface {
	Write(rec LogRecord) error
	WriteBatch(recs []LogRecord) error
	Delete(xid string) error
	DeleteBatch(xids []string) error
	List() ([]LogRecord, error)
}

// memoryLog is the default in-process log store.
type memoryLog struct {
	mu   sync.Mutex
	recs map[string]LogRecord
}

// NewMemoryLog returns an in-memory XA log store.
func NewMemoryLog() LogStore { return &memoryLog{recs: map[string]LogRecord{}} }

func (l *memoryLog) Write(rec LogRecord) error { return l.WriteBatch([]LogRecord{rec}) }

func (l *memoryLog) WriteBatch(recs []LogRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rec := range recs {
		l.recs[rec.XID] = rec
	}
	return nil
}

func (l *memoryLog) Delete(xid string) error { return l.DeleteBatch([]string{xid}) }

func (l *memoryLog) DeleteBatch(xids []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, xid := range xids {
		delete(l.recs, xid)
	}
	return nil
}

func (l *memoryLog) List() ([]LogRecord, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogRecord, 0, len(l.recs))
	for _, r := range l.recs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].XID < out[j].XID })
	return out, nil
}

// registryLog stores XA logs in the Governor's registry.
type registryLog struct {
	reg    *registry.Registry
	prefix string
}

// NewRegistryLog returns a LogStore persisting under prefix (e.g.
// "/transactions") in the coordination registry.
func NewRegistryLog(reg *registry.Registry, prefix string) LogStore {
	return &registryLog{reg: reg, prefix: strings.TrimRight(prefix, "/")}
}

func (l *registryLog) path(xid string) string { return l.prefix + "/" + xid }

func (l *registryLog) Write(rec LogRecord) error { return l.WriteBatch([]LogRecord{rec}) }

func (l *registryLog) WriteBatch(recs []LogRecord) error {
	entries := make(map[string]string, len(recs))
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		entries[l.path(rec.XID)] = string(data)
	}
	// One registry critical section for the whole batch: this is the
	// amortization the group committer buys.
	l.reg.PutAll(entries)
	return nil
}

func (l *registryLog) Delete(xid string) error { return l.DeleteBatch([]string{xid}) }

func (l *registryLog) DeleteBatch(xids []string) error {
	paths := make([]string, len(xids))
	for i, xid := range xids {
		paths[i] = l.path(xid)
	}
	l.reg.DeleteAll(paths)
	return nil
}

func (l *registryLog) List() ([]LogRecord, error) {
	var out []LogRecord
	for _, v := range l.reg.List(l.prefix) {
		var rec LogRecord
		if err := json.Unmarshal([]byte(v), &rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].XID < out[j].XID })
	return out, nil
}

// durableLog models a write-ahead log with a physical sync cost: every
// Write/Delete — batched or not — serializes on one "device" and pays
// syncDelay once, the way a real XA log pays an fsync per decision-point
// write. Benchmarks wrap the registry log in it so the group committer's
// amortization (N records, one sync) is measurable against the
// per-transaction path (N records, N syncs).
type durableLog struct {
	inner LogStore
	delay time.Duration
	mu    sync.Mutex
}

// NewDurableLog wraps inner with a serialized per-operation sync delay.
func NewDurableLog(inner LogStore, syncDelay time.Duration) LogStore {
	return &durableLog{inner: inner, delay: syncDelay}
}

func (l *durableLog) sync(op func() error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	time.Sleep(l.delay)
	return op()
}

func (l *durableLog) Write(rec LogRecord) error {
	return l.sync(func() error { return l.inner.Write(rec) })
}

func (l *durableLog) WriteBatch(recs []LogRecord) error {
	return l.sync(func() error { return l.inner.WriteBatch(recs) })
}

func (l *durableLog) Delete(xid string) error {
	return l.sync(func() error { return l.inner.Delete(xid) })
}

func (l *durableLog) DeleteBatch(xids []string) error {
	return l.sync(func() error { return l.inner.DeleteBatch(xids) })
}

func (l *durableLog) List() ([]LogRecord, error) { return l.inner.List() }

// --- XA transaction (2PC, paper Fig. 5(c)) ---

// branchState tracks how far one branch has progressed; the abort path
// chooses its verbs from it (a prepared branch needs XA ROLLBACK on the
// prepared XID, an active one needs END first, a fast-path local branch
// takes a plain ROLLBACK).
type branchState uint8

const (
	stateLocal    branchState = iota // plain BEGIN (fast path, not yet upgraded)
	stateActive                      // XA BEGIN / XA ADOPT done, not yet prepared
	statePrepared                    // phase 1 acknowledged
)

type xaTx struct {
	mgr      *Manager
	xid      string
	held     *exec.HeldConns
	order    []string // branches in first-touch order
	state    map[string]branchState
	upgraded bool // XA verbs in play (second source touched, or legacy)
	legacy   bool // sequential seed-behaviour commit path
	closed   bool
	tr       *telemetry.Trace
}

func (t *xaTx) Type() Type                      { return XA }
func (t *xaTx) XID() string                     { return t.xid }
func (t *xaTx) Held() *exec.HeldConns           { return t.held }
func (t *xaTx) AttachTrace(tr *telemetry.Trace) { t.tr = tr }

func (t *xaTx) BeforeStatement(ctx context.Context, units []rewrite.SQLUnit) error {
	if t.closed {
		return ErrTxClosed
	}
	var fresh []string
	for _, u := range units {
		if _, ok := t.state[u.DataSource]; ok {
			continue
		}
		dup := false
		for _, ds := range fresh {
			if ds == u.DataSource {
				dup = true
				break
			}
		}
		if !dup {
			fresh = append(fresh, u.DataSource)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	if !t.legacy && !t.upgraded {
		if len(t.order) == 0 && len(fresh) == 1 {
			// Fast path: everything so far lands on one data source. Open a
			// plain local transaction and defer all XA work until a second
			// source proves the transaction is really distributed — the
			// single-shard majority of an OLTP mix never pays 2PC.
			ds := fresh[0]
			conn, err := t.held.Get(ctx, t.mgr.exec, ds)
			if err != nil {
				return err
			}
			if _, err := conn.Exec(ctx, "BEGIN"); err != nil {
				return err
			}
			t.state[ds] = stateLocal
			t.order = append(t.order, ds)
			return nil
		}
		if err := t.upgrade(ctx); err != nil {
			return err
		}
	}
	for _, ds := range fresh {
		conn, err := t.held.Get(ctx, t.mgr.exec, ds)
		if err != nil {
			return err
		}
		if _, err := conn.Exec(ctx, fmt.Sprintf("XA BEGIN '%s'", t.xid)); err != nil {
			return err
		}
		t.state[ds] = stateActive
		t.order = append(t.order, ds)
	}
	return nil
}

// upgrade promotes fast-path local branches to XA: the data source binds
// its active plain transaction to this transaction's XID (XA ADOPT) so
// the branch can be prepared. Runs once, the moment a second source is
// touched; from then on new branches open with XA BEGIN directly.
func (t *xaTx) upgrade(ctx context.Context) error {
	promoted := 0
	for _, ds := range t.order {
		if t.state[ds] != stateLocal {
			continue
		}
		conn, _ := t.held.Peek(ds)
		if _, err := conn.Exec(ctx, fmt.Sprintf("XA ADOPT '%s'", t.xid)); err != nil {
			return fmt.Errorf("transaction: XA upgrade failed on %s: %w", ds, err)
		}
		t.state[ds] = stateActive
		promoted++
	}
	t.upgraded = true
	if promoted > 0 {
		t.mgr.metrics.upgrades.Add(1)
	}
	return nil
}

func (t *xaTx) AfterStatement(context.Context, []rewrite.SQLUnit, error) error { return nil }

// fanOut runs fn over the branches — concurrently on the concurrent
// commit path, in order on the legacy path (where stopOnErr reproduces
// the seed's break-on-first-error prepare loop).
func (t *xaTx) fanOut(branches []string, stopOnErr bool, fn func(i int, ds string) error) []error {
	errs := make([]error, len(branches))
	if t.legacy || len(branches) == 1 {
		for i, ds := range branches {
			if errs[i] = fn(i, ds); errs[i] != nil && stopOnErr {
				break
			}
		}
		return errs
	}
	var wg sync.WaitGroup
	for i, ds := range branches {
		wg.Add(1)
		go func(i int, ds string) {
			defer wg.Done()
			errs[i] = fn(i, ds)
		}(i, ds)
	}
	wg.Wait()
	return errs
}

// Commit runs the transaction's commit protocol.
//
// Fast path (never upgraded): one plain COMMIT, no XA verbs, no log
// record. Otherwise two-phase commit: phase 1 (XA END+PREPARE, pipelined
// per branch, fanned out across branches with fail-fast cancellation),
// the decision-point log write (batched with concurrent transactions by
// the group committer), then phase 2 (XA COMMIT fanned out). A failed
// prepare aborts every branch with state-matched verbs; a partial phase-2
// failure returns the typed InDoubtError — the decision stands and
// Recover completes the stragglers.
func (t *xaTx) Commit(ctx context.Context) error {
	if t.closed {
		return ErrTxClosed
	}
	t.closed = true
	defer t.held.ReleaseAll()

	branches := append([]string(nil), t.order...)
	sort.Strings(branches)

	if !t.legacy && !t.upgraded {
		return t.commitFastPath(ctx, branches)
	}
	if len(branches) == 0 {
		t.mgr.metrics.xaCommits.Add(1)
		return nil
	}

	// Phase 1: prepare. An RM replying "NO" (an error here) aborts.
	if err := t.prepare(ctx, branches); err != nil {
		return err
	}
	if t.mgr.crash(CrashAfterPrepare) {
		// The coordinator "dies" before the decision is logged: branches
		// stay prepared and presumed abort rolls them back on recovery.
		return fmt.Errorf("transaction: coordinator crashed before commit decision for %s (injected)", t.xid)
	}

	// Decision point: log before phase 2 so a coordinator crash commits.
	rec := LogRecord{XID: t.xid, Branches: branches, Decided: true}
	var logErr error
	if t.legacy {
		logErr = t.mgr.log.Write(rec)
	} else {
		logErr = t.mgr.group.write(ctx, rec)
	}
	if logErr != nil {
		t.abort(ctx, branches)
		t.mgr.metrics.xaRollbacks.Add(1)
		return fmt.Errorf("transaction: XA log write failed, rolled back: %w", logErr)
	}
	if t.mgr.crash(CrashAfterLogWrite) {
		t.mgr.metrics.inDoubt.Add(1)
		return &InDoubtError{XID: t.xid, Pending: branches}
	}

	// Phase 2: commit, fanned out. Every branch is attempted even if a
	// sibling fails — the decision is logged and each success is final.
	committed := make([]bool, len(branches))
	errs := t.fanOut(branches, false, func(i int, ds string) error {
		conn, _ := t.held.Peek(ds)
		start := time.Now()
		_, err := conn.Exec(ctx, fmt.Sprintf("XA COMMIT '%s'", t.xid))
		t.tr.AddSpan(telemetry.StageXACommit, ds, start, time.Since(start))
		if err == nil {
			committed[i] = true
		}
		return err
	})
	var pending []string
	var cause error
	for i, ds := range branches {
		if !committed[i] {
			pending = append(pending, ds)
			if cause == nil {
				cause = errs[i]
			}
		}
	}
	if len(pending) > 0 {
		// The commit decision stands and the stragglers are prepared and
		// detached from their sessions — the pooled connections are fine,
		// so they are NOT marked Broken. Recover finishes phase 2; the
		// caller gets the typed in-doubt outcome instead of a silent nil.
		t.mgr.metrics.inDoubt.Add(1)
		return &InDoubtError{XID: t.xid, Pending: pending, Cause: cause}
	}
	t.mgr.metrics.xaCommits.Add(1)
	// Retire the log record. The delete batches through the group
	// committer too, detached from the statement deadline: the commit is
	// already durable, cleanup must not be abandoned halfway.
	if t.legacy {
		return t.mgr.log.Delete(t.xid)
	}
	return t.mgr.group.delete(context.WithoutCancel(ctx), t.xid)
}

// commitFastPath is the single-shard 1PC downgrade: the only branch holds
// a plain local transaction, so COMMIT finishes it — no XA verbs on the
// wire, no log record to write or retire, and no in-doubt window (a
// single participant either commits or aborts atomically).
func (t *xaTx) commitFastPath(ctx context.Context, branches []string) error {
	if len(branches) == 0 {
		t.mgr.metrics.fastPathCommits.Add(1)
		return nil
	}
	ds := branches[0]
	conn, _ := t.held.Peek(ds)
	start := time.Now()
	if _, err := conn.Exec(ctx, "COMMIT"); err != nil {
		// The branch never prepared, so the global outcome is a clean
		// abort — roll the local transaction back, detached from the
		// (possibly expired) statement context.
		if _, rbErr := conn.Exec(context.WithoutCancel(ctx), "ROLLBACK"); rbErr != nil {
			conn.Broken = true
		}
		return fmt.Errorf("transaction: fast-path commit failed on %s, rolled back: %w", ds, err)
	}
	t.tr.AddSpan(telemetry.StageXACommit, ds, start, time.Since(start))
	t.mgr.metrics.fastPathCommits.Add(1)
	return nil
}

// prepare fans XA END+PREPARE out across the branches (pipelined as one
// batch per branch: a remote branch pays a single round trip for phase
// 1). The first NO cancels the in-flight siblings, then every branch is
// aborted with verbs matched to how far it got.
func (t *xaTx) prepare(ctx context.Context, branches []string) error {
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	prepared := make([]bool, len(branches))
	errs := t.fanOut(branches, true, func(i int, ds string) error {
		conn, _ := t.held.Peek(ds)
		start := time.Now()
		_, err := resource.ExecBatch(fanCtx, conn, []resource.Statement{
			{SQL: fmt.Sprintf("XA END '%s'", t.xid)},
			{SQL: fmt.Sprintf("XA PREPARE '%s'", t.xid)},
		})
		t.tr.AddSpan(telemetry.StageXAPrepare, ds, start, time.Since(start))
		if err != nil {
			cancel() // fail fast: no point preparing the siblings
			return err
		}
		prepared[i] = true
		return nil
	})
	var failedDS string
	var cause error
	for i, ds := range branches {
		if prepared[i] {
			t.state[ds] = statePrepared
		} else if cause == nil && errs[i] != nil {
			failedDS, cause = ds, errs[i]
		}
	}
	if cause == nil {
		return nil
	}
	t.mgr.metrics.prepareFailures.Add(1)
	t.abort(ctx, branches)
	return fmt.Errorf("transaction: XA prepare failed on %s, rolled back: %w", failedDS, cause)
}

func (t *xaTx) Rollback(ctx context.Context) error {
	if t.closed {
		return ErrTxClosed
	}
	t.closed = true
	defer t.held.ReleaseAll()
	t.abort(ctx, append([]string(nil), t.order...))
	t.mgr.metrics.xaRollbacks.Add(1)
	return nil
}

// abortTimeout bounds cleanup fan-outs that run detached from the
// (possibly already cancelled) statement context.
const abortTimeout = 10 * time.Second

// abort rolls the branches back with verbs matched to each branch's
// state: prepared branches take XA ROLLBACK on the prepared XID; branches
// that never reached PREPARE need END on their active work first; a
// fast-path local branch takes a plain ROLLBACK. It runs detached from
// the caller's context so cleanup still reaches the branches after a
// deadline or a fail-fast cancellation, and only a failed abort — branch
// state genuinely unknown — marks the pooled connection Broken.
func (t *xaTx) abort(ctx context.Context, branches []string) {
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), abortTimeout)
	defer cancel()
	t.fanOut(branches, false, func(i int, ds string) error {
		conn, ok := t.held.Peek(ds)
		if !ok {
			return nil
		}
		var err error
		switch t.state[ds] {
		case statePrepared:
			_, err = conn.Exec(ctx, fmt.Sprintf("XA ROLLBACK '%s'", t.xid))
		case stateActive:
			// Not yet prepared: END the active association, then roll it
			// back. A branch whose prepare batch died between END and
			// PREPARE sees END again — the data node treats the repeat as
			// validation of an already-ended branch.
			_, err = resource.ExecBatch(ctx, conn, []resource.Statement{
				{SQL: fmt.Sprintf("XA END '%s'", t.xid)},
				{SQL: fmt.Sprintf("XA ROLLBACK '%s'", t.xid)},
			})
		default: // stateLocal: fast-path plain transaction
			_, err = conn.Exec(ctx, "ROLLBACK")
		}
		if err != nil {
			conn.Broken = true
		}
		return err
	})
}

// Recover completes in-doubt XA transactions after a coordinator restart
// (paper: "recover the transaction after the server restarts or re-commit
// periodically according to the recorded logs"). Logged-decided branches
// are committed; every other prepared XID found via XA RECOVER is rolled
// back (presumed abort). It returns the number of resolved transactions.
func (m *Manager) Recover(ctx context.Context) (int, error) {
	resolved := 0
	recs, err := m.log.List()
	if err != nil {
		return 0, err
	}
	logged := map[string]bool{}
	for _, rec := range recs {
		logged[rec.XID] = true
		if !rec.Decided {
			continue
		}
		for _, ds := range rec.Branches {
			if err := m.execOn(ctx, ds, fmt.Sprintf("XA COMMIT '%s'", rec.XID)); err != nil {
				// Already committed on this branch, or branch unknown —
				// both mean the branch needs no further action.
				continue
			}
		}
		if err := m.log.Delete(rec.XID); err != nil {
			return resolved, err
		}
		resolved++
		m.metrics.recoverResolved.Add(1)
	}
	// Presumed abort: any prepared XID with no decided log rolls back.
	for _, ds := range m.exec.Sources() {
		xids, err := m.recoverOn(ctx, ds)
		if err != nil {
			continue
		}
		for _, xid := range xids {
			if logged[xid] {
				continue
			}
			if err := m.execOn(ctx, ds, fmt.Sprintf("XA ROLLBACK '%s'", xid)); err == nil {
				resolved++
				m.metrics.recoverResolved.Add(1)
			}
		}
	}
	// Undecided log records are cleaned up after their branches aborted.
	for _, rec := range recs {
		if !rec.Decided {
			for _, ds := range rec.Branches {
				m.execOn(ctx, ds, fmt.Sprintf("XA ROLLBACK '%s'", rec.XID))
			}
			m.log.Delete(rec.XID)
			resolved++
			m.metrics.recoverResolved.Add(1)
		}
	}
	return resolved, nil
}

func (m *Manager) execOn(ctx context.Context, ds, sql string) error {
	src, err := m.exec.Source(ds)
	if err != nil {
		return err
	}
	conn, err := src.AcquireCtx(ctx)
	if err != nil {
		return err
	}
	defer conn.Release()
	_, err = conn.Exec(ctx, sql)
	return err
}

func (m *Manager) recoverOn(ctx context.Context, ds string) ([]string, error) {
	src, err := m.exec.Source(ds)
	if err != nil {
		return nil, err
	}
	conn, err := src.AcquireCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Release()
	rs, err := conn.Query(ctx, "XA RECOVER")
	if err != nil {
		return nil, err
	}
	rows, err := resource.ReadAll(rs)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, r[0].AsString())
	}
	return out, nil
}
