package transaction

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"shardingsphere/internal/exec"
	"shardingsphere/internal/registry"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/telemetry"
)

// LogRecord is one XA transaction-log entry: the set of branches and
// whether the commit decision was taken. Its presence without Decided
// means "roll the branches back"; with Decided it means "commit them" —
// the standard presumed-abort protocol.
type LogRecord struct {
	XID      string   `json:"xid"`
	Branches []string `json:"branches"` // data source names
	Decided  bool     `json:"decided"`  // commit decision logged
}

// LogStore persists XA transaction logs; the registry-backed
// implementation survives a coordinator restart (the paper's recovery
// after "the server is down or the network jitters").
type LogStore interface {
	Write(rec LogRecord) error
	Delete(xid string) error
	List() ([]LogRecord, error)
}

// memoryLog is the default in-process log store.
type memoryLog struct {
	mu   sync.Mutex
	recs map[string]LogRecord
}

// NewMemoryLog returns an in-memory XA log store.
func NewMemoryLog() LogStore { return &memoryLog{recs: map[string]LogRecord{}} }

func (l *memoryLog) Write(rec LogRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs[rec.XID] = rec
	return nil
}

func (l *memoryLog) Delete(xid string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.recs, xid)
	return nil
}

func (l *memoryLog) List() ([]LogRecord, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogRecord, 0, len(l.recs))
	for _, r := range l.recs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].XID < out[j].XID })
	return out, nil
}

// registryLog stores XA logs in the Governor's registry.
type registryLog struct {
	reg    *registry.Registry
	prefix string
}

// NewRegistryLog returns a LogStore persisting under prefix (e.g.
// "/transactions") in the coordination registry.
func NewRegistryLog(reg *registry.Registry, prefix string) LogStore {
	return &registryLog{reg: reg, prefix: strings.TrimRight(prefix, "/")}
}

func (l *registryLog) path(xid string) string { return l.prefix + "/" + xid }

func (l *registryLog) Write(rec LogRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	l.reg.Put(l.path(rec.XID), string(data))
	return nil
}

func (l *registryLog) Delete(xid string) error {
	err := l.reg.Delete(l.path(xid))
	if err == registry.ErrNotFound {
		return nil
	}
	return err
}

func (l *registryLog) List() ([]LogRecord, error) {
	var out []LogRecord
	for _, v := range l.reg.List(l.prefix) {
		var rec LogRecord
		if err := json.Unmarshal([]byte(v), &rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].XID < out[j].XID })
	return out, nil
}

// --- XA transaction (2PC, paper Fig. 5(c)) ---

type xaTx struct {
	mgr    *Manager
	xid    string
	held   *exec.HeldConns
	begun  map[string]bool
	closed bool
	tr     *telemetry.Trace
}

func (t *xaTx) Type() Type                      { return XA }
func (t *xaTx) XID() string                     { return t.xid }
func (t *xaTx) Held() *exec.HeldConns           { return t.held }
func (t *xaTx) AttachTrace(tr *telemetry.Trace) { t.tr = tr }

func (t *xaTx) BeforeStatement(units []rewrite.SQLUnit) error {
	if t.closed {
		return ErrTxClosed
	}
	for _, u := range units {
		if t.begun[u.DataSource] {
			continue
		}
		conn, err := t.held.Get(t.mgr.exec, u.DataSource)
		if err != nil {
			return err
		}
		if _, err := conn.Exec(context.Background(), fmt.Sprintf("XA BEGIN '%s'", t.xid)); err != nil {
			return err
		}
		t.begun[u.DataSource] = true
	}
	return nil
}

func (t *xaTx) AfterStatement([]rewrite.SQLUnit, error) error { return nil }

// Commit runs two-phase commit: prepare every branch, log the commit
// decision, then commit every branch. A failed prepare rolls everything
// back; a failed phase-2 commit leaves the log record for Recover.
func (t *xaTx) Commit() error {
	if t.closed {
		return ErrTxClosed
	}
	t.closed = true
	defer t.held.ReleaseAll()

	branches := make([]string, 0, len(t.begun))
	for ds := range t.begun {
		branches = append(branches, ds)
	}
	sort.Strings(branches)

	// Phase 1: prepare. An RM replying "NO" (an error here) aborts.
	prepareStart := time.Now()
	prepared := make([]string, 0, len(branches))
	var prepareErr error
	for _, ds := range branches {
		conn, _ := t.held.Peek(ds)
		// END and PREPARE pipeline as one batch: a remote branch pays a
		// single round trip for phase 1 instead of two.
		if _, err := resource.ExecBatch(context.Background(), conn, []resource.Statement{
			{SQL: fmt.Sprintf("XA END '%s'", t.xid)},
			{SQL: fmt.Sprintf("XA PREPARE '%s'", t.xid)},
		}); err != nil {
			prepareErr = err
			break
		}
		prepared = append(prepared, ds)
	}
	t.tr.AddSpan(telemetry.StageXAPrepare, "", prepareStart, time.Since(prepareStart))
	if prepareErr != nil {
		// Roll back every branch: prepared ones via XA ROLLBACK on the
		// prepared XID, unprepared ones likewise (the session resolves
		// its own active branch).
		for _, ds := range branches {
			conn, _ := t.held.Peek(ds)
			if _, err := conn.Exec(context.Background(), fmt.Sprintf("XA ROLLBACK '%s'", t.xid)); err != nil {
				conn.Broken = true
			}
		}
		return fmt.Errorf("transaction: XA prepare failed, rolled back: %w", prepareErr)
	}

	// Decision point: log before phase 2 so a coordinator crash commits.
	if err := t.mgr.log.Write(LogRecord{XID: t.xid, Branches: branches, Decided: true}); err != nil {
		for _, ds := range prepared {
			conn, _ := t.held.Peek(ds)
			conn.Exec(context.Background(), fmt.Sprintf("XA ROLLBACK '%s'", t.xid))
		}
		return fmt.Errorf("transaction: XA log write failed, rolled back: %w", err)
	}

	// Phase 2: commit. Failures leave the log record; Recover finishes.
	commitStart := time.Now()
	allOK := true
	for _, ds := range branches {
		conn, _ := t.held.Peek(ds)
		if _, err := conn.Exec(context.Background(), fmt.Sprintf("XA COMMIT '%s'", t.xid)); err != nil {
			conn.Broken = true
			allOK = false
		}
	}
	t.tr.AddSpan(telemetry.StageXACommit, "", commitStart, time.Since(commitStart))
	if allOK {
		return t.mgr.log.Delete(t.xid)
	}
	return nil // commit decision stands; recovery completes the stragglers
}

func (t *xaTx) Rollback() error {
	if t.closed {
		return ErrTxClosed
	}
	t.closed = true
	defer t.held.ReleaseAll()
	for ds := range t.begun {
		conn, _ := t.held.Peek(ds)
		if _, err := conn.Exec(context.Background(), fmt.Sprintf("XA ROLLBACK '%s'", t.xid)); err != nil {
			conn.Broken = true
		}
	}
	return nil
}

// Recover completes in-doubt XA transactions after a coordinator restart
// (paper: "recover the transaction after the server restarts or re-commit
// periodically according to the recorded logs"). Logged-decided branches
// are committed; every other prepared XID found via XA RECOVER is rolled
// back (presumed abort). It returns the number of resolved transactions.
func (m *Manager) Recover() (int, error) {
	resolved := 0
	recs, err := m.log.List()
	if err != nil {
		return 0, err
	}
	logged := map[string]bool{}
	for _, rec := range recs {
		logged[rec.XID] = true
		if !rec.Decided {
			continue
		}
		for _, ds := range rec.Branches {
			if err := m.execOn(ds, fmt.Sprintf("XA COMMIT '%s'", rec.XID)); err != nil {
				// Already committed on this branch, or branch unknown —
				// both mean the branch needs no further action.
				continue
			}
		}
		if err := m.log.Delete(rec.XID); err != nil {
			return resolved, err
		}
		resolved++
	}
	// Presumed abort: any prepared XID with no decided log rolls back.
	for _, ds := range m.exec.Sources() {
		xids, err := m.recoverOn(ds)
		if err != nil {
			continue
		}
		for _, xid := range xids {
			if logged[xid] {
				continue
			}
			if err := m.execOn(ds, fmt.Sprintf("XA ROLLBACK '%s'", xid)); err == nil {
				resolved++
			}
		}
	}
	// Undecided log records are cleaned up after their branches aborted.
	for _, rec := range recs {
		if !rec.Decided {
			for _, ds := range rec.Branches {
				m.execOn(ds, fmt.Sprintf("XA ROLLBACK '%s'", rec.XID))
			}
			m.log.Delete(rec.XID)
			resolved++
		}
	}
	return resolved, nil
}

func (m *Manager) execOn(ds, sql string) error {
	src, err := m.exec.Source(ds)
	if err != nil {
		return err
	}
	conn, err := src.Acquire()
	if err != nil {
		return err
	}
	defer conn.Release()
	_, err = conn.Exec(context.Background(), sql)
	return err
}

func (m *Manager) recoverOn(ds string) ([]string, error) {
	src, err := m.exec.Source(ds)
	if err != nil {
		return nil, err
	}
	conn, err := src.Acquire()
	if err != nil {
		return nil, err
	}
	defer conn.Release()
	rs, err := conn.Query(context.Background(), "XA RECOVER")
	if err != nil {
		return nil, err
	}
	rows, err := resource.ReadAll(rs)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, r[0].AsString())
	}
	return out, nil
}
