// Package transaction implements the three distributed transaction types
// of paper Section IV-B:
//
// LOCAL — 1PC: COMMIT/ROLLBACK fans out to every touched source and
// failures on individual sources are ignored, trading consistency for
// speed exactly as the paper describes.
//
// XA — 2PC over the data sources' XA verbs, with a transaction log kept
// in the Governor's registry: the commit decision is logged before phase
// 2, and Recover completes in-doubt branches after a coordinator restart.
// The commit path is built for concurrency: phase 1 and phase 2 fan out
// across branches in parallel, concurrent transactions' log writes batch
// through a group committer, and a transaction that only ever touched one
// data source commits as plain 1PC with no XA verbs and no log record
// (the STAR observation: single-partition transactions dominate OLTP
// mixes and should skip coordination entirely).
//
// BASE — a Seata-AT-style flow (paper Fig. 6): each statement commits
// locally right away inside its own branch transaction while the manager
// records compensation ("undo") SQL built from before/after row images;
// global rollback replays the compensations in reverse order through the
// Transaction Coordinator.
package transaction

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"shardingsphere/internal/exec"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/telemetry"
)

// Type selects the distributed transaction behaviour; switchable at
// runtime via DistSQL ("SET VARIABLE transaction_type = ...").
type Type uint8

// Transaction types.
const (
	Local Type = iota
	XA
	Base
)

func (t Type) String() string {
	switch t {
	case XA:
		return "XA"
	case Base:
		return "BASE"
	default:
		return "LOCAL"
	}
}

// ParseType parses a transaction type name.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "LOCAL":
		return Local, nil
	case "XA":
		return XA, nil
	case "BASE":
		return Base, nil
	default:
		return Local, fmt.Errorf("transaction: unknown type %q", s)
	}
}

// ErrTxClosed reports use of a finished transaction.
var ErrTxClosed = errors.New("transaction: already finished")

// Tx is one distributed transaction. The kernel calls BeforeStatement
// before executing a statement's units and AfterStatement once they ran;
// transactions pin one connection per data source via Held.
//
// Every method that talks to data sources takes the statement context:
// statement_timeout_ms deadlines and client cancellation propagate into
// BEGIN/undo capture and the 2PC verbs. Cleanup after a failure detaches
// from the (possibly already expired) cause via context.WithoutCancel so
// abort verbs still reach the branches.
type Tx interface {
	Type() Type
	XID() string
	// Held returns the pinned connections the executor must use.
	Held() *exec.HeldConns
	// BeforeStatement prepares the touched data sources (BEGIN / XA BEGIN
	// / undo capture) for the units about to execute.
	BeforeStatement(ctx context.Context, units []rewrite.SQLUnit) error
	// AfterStatement finalizes per-statement work (BASE local commit and
	// after-image capture). execErr is the execution outcome.
	AfterStatement(ctx context.Context, units []rewrite.SQLUnit, execErr error) error
	Commit(ctx context.Context) error
	Rollback(ctx context.Context) error
	// AttachTrace routes transaction-phase spans (XA prepare/commit, BASE
	// undo capture) into the current statement's trace. The session calls
	// it before each statement and before Commit/Rollback; nil detaches.
	AttachTrace(tr *telemetry.Trace)
}

// Manager creates distributed transactions over an executor.
type Manager struct {
	exec  *exec.Executor
	log   LogStore
	group *groupCommitter
	tc    *Coordinator
	meta  MetaProvider
	seq   atomic.Int64
	tel   *telemetry.Collector

	// legacy restores the sequential commit path (XA verbs from the first
	// statement, serial phase 1/2, one log write per transaction) — the
	// benchmark baseline against which the concurrent path is measured.
	legacy    atomic.Bool
	crashHook atomic.Value // func(point string) bool

	metrics txnCounters
}

// Crash points the coordinator consults between 2PC steps; a chaos hook
// returning true at one of them simulates the coordinator dying there.
const (
	CrashAfterPrepare  = "after_prepare"   // branches prepared, decision not yet logged
	CrashAfterLogWrite = "after_log_write" // decision logged, phase 2 not started
)

// txnCounters backs SHOW TRANSACTION METRICS.
type txnCounters struct {
	begun           atomic.Int64
	fastPathCommits atomic.Int64
	xaCommits       atomic.Int64
	xaRollbacks     atomic.Int64
	upgrades        atomic.Int64
	prepareFailures atomic.Int64
	inDoubt         atomic.Int64
	recoverResolved atomic.Int64
}

// SetTelemetry wires the kernel's collector; transaction-phase latencies
// recorded through attached traces aggregate there.
func (m *Manager) SetTelemetry(c *telemetry.Collector) { m.tel = c }

// SetLegacyCommit toggles the pre-concurrency commit path (every
// transaction runs full sequential 2PC with a per-transaction log write,
// no single-shard fast path). Benchmarks use it as the baseline.
func (m *Manager) SetLegacyCommit(on bool) { m.legacy.Store(on) }

// SetCrashHook installs a chaos hook consulted at the 2PC crash points;
// returning true makes the coordinator abandon the commit at that point
// as if the process died. nil-safe: no hook means no crashes.
func (m *Manager) SetCrashHook(hook func(point string) bool) {
	if hook != nil {
		m.crashHook.Store(hook)
	}
}

func (m *Manager) crash(point string) bool {
	if h, ok := m.crashHook.Load().(func(string) bool); ok && h != nil {
		return h(point)
	}
	return false
}

// Metrics reports transaction counters (a governor metrics source and the
// body of SHOW TRANSACTION METRICS). The fastpath_commits counter is the
// observable proof that single-shard transactions skip XA entirely.
func (m *Manager) Metrics() map[string]int64 {
	out := map[string]int64{
		"begun":            m.metrics.begun.Load(),
		"fastpath_commits": m.metrics.fastPathCommits.Load(),
		"xa_commits":       m.metrics.xaCommits.Load(),
		"xa_rollbacks":     m.metrics.xaRollbacks.Load(),
		"upgrades":         m.metrics.upgrades.Load(),
		"prepare_failures": m.metrics.prepareFailures.Load(),
		"in_doubt":         m.metrics.inDoubt.Load(),
		"recover_resolved": m.metrics.recoverResolved.Load(),
	}
	for k, v := range m.group.metrics() {
		out[k] = v
	}
	return out
}

// MetaProvider resolves table metadata (primary key and column names) of
// actual tables on a data source; BASE undo generation needs it.
type MetaProvider interface {
	TableMeta(dataSource, table string) (pk []string, cols []string, err error)
}

// NewManager builds a transaction manager. log may be nil (in-memory XA
// log); meta is required only for BASE transactions.
func NewManager(e *exec.Executor, log LogStore, meta MetaProvider) *Manager {
	if log == nil {
		log = NewMemoryLog()
	}
	return &Manager{exec: e, log: log, group: newGroupCommitter(log), tc: NewCoordinator(), meta: meta}
}

// Coordinator exposes the BASE transaction coordinator (for inspection).
func (m *Manager) Coordinator() *Coordinator { return m.tc }

// Begin opens a distributed transaction of the given type.
func (m *Manager) Begin(t Type) (Tx, error) {
	xid := fmt.Sprintf("gtx-%d", m.seq.Add(1))
	m.metrics.begun.Add(1)
	switch t {
	case XA:
		return &xaTx{mgr: m, xid: xid, held: exec.NewHeldConns(),
			state: map[string]branchState{}, legacy: m.legacy.Load()}, nil
	case Base:
		if m.meta == nil {
			return nil, fmt.Errorf("transaction: BASE needs a metadata provider")
		}
		gtx := m.tc.BeginGlobal(xid)
		return &baseTx{mgr: m, xid: xid, held: exec.NewHeldConns(), global: gtx}, nil
	default:
		return &localTx{mgr: m, xid: xid, held: exec.NewHeldConns(), begun: map[string]bool{}}, nil
	}
}

// --- LOCAL (1PC) ---

type localTx struct {
	mgr    *Manager
	xid    string
	held   *exec.HeldConns
	begun  map[string]bool
	closed bool
	tr     *telemetry.Trace
}

func (t *localTx) Type() Type                      { return Local }
func (t *localTx) XID() string                     { return t.xid }
func (t *localTx) Held() *exec.HeldConns           { return t.held }
func (t *localTx) AttachTrace(tr *telemetry.Trace) { t.tr = tr }

func (t *localTx) BeforeStatement(ctx context.Context, units []rewrite.SQLUnit) error {
	if t.closed {
		return ErrTxClosed
	}
	for _, u := range units {
		if t.begun[u.DataSource] {
			continue
		}
		conn, err := t.held.Get(ctx, t.mgr.exec, u.DataSource)
		if err != nil {
			return err
		}
		if _, err := conn.Exec(ctx, "BEGIN"); err != nil {
			return err
		}
		t.begun[u.DataSource] = true
	}
	return nil
}

func (t *localTx) AfterStatement(context.Context, []rewrite.SQLUnit, error) error { return nil }

// Commit is 1PC: the command fans out and per-source failures are
// ignored (paper Fig. 5(d)).
func (t *localTx) Commit(ctx context.Context) error { return t.finish(ctx, "COMMIT") }

func (t *localTx) Rollback(ctx context.Context) error { return t.finish(ctx, "ROLLBACK") }

func (t *localTx) finish(ctx context.Context, cmd string) error {
	if t.closed {
		return ErrTxClosed
	}
	t.closed = true
	defer t.held.ReleaseAll()
	// 1PC: fan the command out over the pinned connections; individual
	// failures are ignored (paper: "Even if some data source commits
	// fail, ShardingSphere will ignore it"). The fan-out must still run
	// when the statement deadline already fired — an unfinished branch
	// would otherwise leak its locks back into the pool.
	ctx = context.WithoutCancel(ctx)
	t.held.Each(func(ds string, c *resource.PooledConn) error {
		if _, err := c.Exec(ctx, cmd); err != nil {
			c.Broken = true
		}
		return nil
	})
	return nil
}
