// Package transaction implements the three distributed transaction types
// of paper Section IV-B:
//
// LOCAL — 1PC: COMMIT/ROLLBACK fans out to every touched source and
// failures on individual sources are ignored, trading consistency for
// speed exactly as the paper describes.
//
// XA — 2PC over the data sources' XA verbs, with a transaction log kept
// in the Governor's registry: the commit decision is logged before phase
// 2, and Recover completes in-doubt branches after a coordinator restart.
//
// BASE — a Seata-AT-style flow (paper Fig. 6): each statement commits
// locally right away inside its own branch transaction while the manager
// records compensation ("undo") SQL built from before/after row images;
// global rollback replays the compensations in reverse order through the
// Transaction Coordinator.
package transaction

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"shardingsphere/internal/exec"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/telemetry"
)

// Type selects the distributed transaction behaviour; switchable at
// runtime via DistSQL ("SET VARIABLE transaction_type = ...").
type Type uint8

// Transaction types.
const (
	Local Type = iota
	XA
	Base
)

func (t Type) String() string {
	switch t {
	case XA:
		return "XA"
	case Base:
		return "BASE"
	default:
		return "LOCAL"
	}
}

// ParseType parses a transaction type name.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "LOCAL":
		return Local, nil
	case "XA":
		return XA, nil
	case "BASE":
		return Base, nil
	default:
		return Local, fmt.Errorf("transaction: unknown type %q", s)
	}
}

// ErrTxClosed reports use of a finished transaction.
var ErrTxClosed = errors.New("transaction: already finished")

// Tx is one distributed transaction. The kernel calls BeforeStatement
// before executing a statement's units and AfterStatement once they ran;
// transactions pin one connection per data source via Held.
type Tx interface {
	Type() Type
	XID() string
	// Held returns the pinned connections the executor must use.
	Held() *exec.HeldConns
	// BeforeStatement prepares the touched data sources (BEGIN / XA BEGIN
	// / undo capture) for the units about to execute.
	BeforeStatement(units []rewrite.SQLUnit) error
	// AfterStatement finalizes per-statement work (BASE local commit and
	// after-image capture). execErr is the execution outcome.
	AfterStatement(units []rewrite.SQLUnit, execErr error) error
	Commit() error
	Rollback() error
	// AttachTrace routes transaction-phase spans (XA prepare/commit, BASE
	// undo capture) into the current statement's trace. The session calls
	// it before each statement and before Commit/Rollback; nil detaches.
	AttachTrace(tr *telemetry.Trace)
}

// Manager creates distributed transactions over an executor.
type Manager struct {
	exec *exec.Executor
	log  LogStore
	tc   *Coordinator
	meta MetaProvider
	seq  atomic.Int64
	tel  *telemetry.Collector
}

// SetTelemetry wires the kernel's collector; transaction-phase latencies
// recorded through attached traces aggregate there.
func (m *Manager) SetTelemetry(c *telemetry.Collector) { m.tel = c }

// MetaProvider resolves table metadata (primary key and column names) of
// actual tables on a data source; BASE undo generation needs it.
type MetaProvider interface {
	TableMeta(dataSource, table string) (pk []string, cols []string, err error)
}

// NewManager builds a transaction manager. log may be nil (in-memory XA
// log); meta is required only for BASE transactions.
func NewManager(e *exec.Executor, log LogStore, meta MetaProvider) *Manager {
	if log == nil {
		log = NewMemoryLog()
	}
	return &Manager{exec: e, log: log, tc: NewCoordinator(), meta: meta}
}

// Coordinator exposes the BASE transaction coordinator (for inspection).
func (m *Manager) Coordinator() *Coordinator { return m.tc }

// Begin opens a distributed transaction of the given type.
func (m *Manager) Begin(t Type) (Tx, error) {
	xid := fmt.Sprintf("gtx-%d", m.seq.Add(1))
	switch t {
	case XA:
		return &xaTx{mgr: m, xid: xid, held: exec.NewHeldConns(), begun: map[string]bool{}}, nil
	case Base:
		if m.meta == nil {
			return nil, fmt.Errorf("transaction: BASE needs a metadata provider")
		}
		gtx := m.tc.BeginGlobal(xid)
		return &baseTx{mgr: m, xid: xid, held: exec.NewHeldConns(), global: gtx}, nil
	default:
		return &localTx{mgr: m, xid: xid, held: exec.NewHeldConns(), begun: map[string]bool{}}, nil
	}
}

// --- LOCAL (1PC) ---

type localTx struct {
	mgr    *Manager
	xid    string
	held   *exec.HeldConns
	begun  map[string]bool
	closed bool
	tr     *telemetry.Trace
}

func (t *localTx) Type() Type                      { return Local }
func (t *localTx) XID() string                     { return t.xid }
func (t *localTx) Held() *exec.HeldConns           { return t.held }
func (t *localTx) AttachTrace(tr *telemetry.Trace) { t.tr = tr }

func (t *localTx) BeforeStatement(units []rewrite.SQLUnit) error {
	if t.closed {
		return ErrTxClosed
	}
	for _, u := range units {
		if t.begun[u.DataSource] {
			continue
		}
		conn, err := t.held.Get(t.mgr.exec, u.DataSource)
		if err != nil {
			return err
		}
		if _, err := conn.Exec(context.Background(), "BEGIN"); err != nil {
			return err
		}
		t.begun[u.DataSource] = true
	}
	return nil
}

func (t *localTx) AfterStatement([]rewrite.SQLUnit, error) error { return nil }

// Commit is 1PC: the command fans out and per-source failures are
// ignored (paper Fig. 5(d)).
func (t *localTx) Commit() error { return t.finish("COMMIT") }

func (t *localTx) Rollback() error { return t.finish("ROLLBACK") }

func (t *localTx) finish(cmd string) error {
	if t.closed {
		return ErrTxClosed
	}
	t.closed = true
	defer t.held.ReleaseAll()
	// 1PC: fan the command out over the pinned connections; individual
	// failures are ignored (paper: "Even if some data source commits
	// fail, ShardingSphere will ignore it").
	t.held.Each(func(ds string, c *resource.PooledConn) error {
		if _, err := c.Exec(context.Background(), cmd); err != nil {
			c.Broken = true
		}
		return nil
	})
	return nil
}
