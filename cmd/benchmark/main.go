// Command benchmark regenerates every table and figure of the paper's
// evaluation (Section VIII) against this repository's systems: SSJ (the
// embedded driver), SSP (the TCP proxy), the naive broadcast middleware,
// and the single-instance baseline. Absolute numbers differ from the
// paper's cloud testbed by design; the shapes — who wins, by what factor,
// where curves bend — are the reproduction target (see EXPERIMENTS.md).
//
// Usage:
//
//	benchmark [flags] <experiment>
//	experiments: table3 table4 fig9 fig10 fig11 fig12 fig13 fig14 fig15 all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"shardingsphere/internal/bench"
)

var (
	flagRows       = flag.Int("rows", 20000, "sysbench data size (rows)")
	flagSources    = flag.Int("sources", 5, "number of data sources")
	flagThreads    = flag.Int("threads", 32, "request concurrency")
	flagDuration   = flag.Duration("duration", 2*time.Second, "measurement duration per cell")
	flagWarehouses = flag.Int("warehouses", 4, "TPCC warehouses")
	flagSeed       = flag.Int64("seed", 42, "workload seed")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchmark [flags] <table3|table4|fig9|fig10|fig11|fig12|fig13|fig14|fig15|all>")
		os.Exit(2)
	}
	exps := map[string]func() error{
		"table3": table3,
		"table4": table4,
		"fig9":   fig9,
		"fig10":  fig10,
		"fig11":  fig11,
		"fig12":  fig12,
		"fig13":  fig13,
		"fig14":  fig14,
		"fig15":  fig15,
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, n := range []string{"table3", "table4", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"} {
			if err := exps[n](); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
				os.Exit(1)
			}
		}
		return
	}
	fn, ok := exps[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		os.Exit(2)
	}
	if err := fn(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}

func opts() bench.Options {
	return bench.Options{Workers: *flagThreads, Duration: *flagDuration, Seed: *flagSeed}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func row(system, scenario string, m bench.Metrics) {
	fmt.Printf("%-8s %-14s %s\n", system, scenario, m)
}
