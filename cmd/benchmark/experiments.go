package main

import (
	"fmt"
	"math/rand"
	"time"

	"shardingsphere/internal/bench"
	"shardingsphere/internal/bench/sysbench"
	"shardingsphere/internal/bench/tpcc"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/transaction"
)

// sysbenchSystem builds and loads a system with the sbtest workload.
func sysbenchSystem(build func(bench.Topology) (*bench.System, error), top bench.Topology, cfg sysbench.Config) (*bench.System, error) {
	sys, err := build(top)
	if err != nil {
		return nil, err
	}
	if err := bench.PrepareOn(sys, func(c bench.Client) error {
		return sysbench.Prepare(c, cfg)
	}); err != nil {
		sys.Close()
		return nil, err
	}
	return sys, nil
}

// singleSysbench loads the single-node baseline.
func singleSysbench(name string, cfg sysbench.Config) (*bench.System, error) {
	sys, err := bench.NewSingle(name, 0)
	if err != nil {
		return nil, err
	}
	if err := bench.PrepareOn(sys, func(c bench.Client) error {
		return sysbench.Prepare(c, cfg)
	}); err != nil {
		sys.Close()
		return nil, err
	}
	return sys, nil
}

// table3 reproduces Table III: Sysbench scenarios across the distributed
// systems.
func table3() error {
	header(fmt.Sprintf("Table III — Sysbench scenarios (%d rows, %d sources, %d threads)",
		*flagRows, *flagSources, *flagThreads))
	cfg := sysbench.DefaultConfig(*flagRows)
	top := bench.Topology{Sources: *flagSources, MaxCon: 4}
	systems := []struct {
		name  string
		build func(bench.Topology) (*bench.System, error)
	}{
		{"SSJ", bench.NewSSJ},
		{"SSP", bench.NewSSP},
		{"Naive", bench.NewNaive},
	}
	scenarios := []struct {
		name string
		fn   func(sysbench.Config) bench.TxFunc
	}{
		{"PointSelect", func(c sysbench.Config) bench.TxFunc { return c.PointSelect() }},
		{"ReadOnly", func(c sysbench.Config) bench.TxFunc { return c.ReadOnly() }},
		{"ReadWrite", func(c sysbench.Config) bench.TxFunc { return c.ReadWrite() }},
		{"WriteOnly", func(c sysbench.Config) bench.TxFunc { return c.WriteOnly() }},
	}
	for _, sysSpec := range systems {
		sys, err := sysbenchSystem(sysSpec.build, top, cfg)
		if err != nil {
			return err
		}
		for _, sc := range scenarios {
			m, err := bench.Run(opts(), sys.NewClient, sc.fn(cfg))
			if err != nil {
				sys.Close()
				return err
			}
			row(sys.Name, sc.name, m)
		}
		sys.Close()
	}
	// The single-instance reference ("MS").
	single, err := singleSysbench("Single", cfg)
	if err != nil {
		return err
	}
	defer single.Close()
	for _, sc := range scenarios {
		m, err := bench.Run(opts(), single.NewClient, sc.fn(cfg))
		if err != nil {
			return err
		}
		row("Single", sc.name, m)
	}
	return nil
}

// table4 reproduces Table IV: everything on ONE server — sharding into 10
// small tables still beats one big table.
func table4() error {
	header(fmt.Sprintf("Table IV — single server (%d rows, %d threads)", *flagRows, *flagThreads))
	cfg := sysbench.DefaultConfig(*flagRows)
	top := bench.Topology{Sources: 1, TablesPerSource: 10, MaxCon: 4}

	single, err := singleSysbench("MS", cfg)
	if err != nil {
		return err
	}
	m, err := bench.Run(opts(), single.NewClient, cfg.ReadWrite())
	single.Close()
	if err != nil {
		return err
	}
	row("MS", "ReadWrite", m)

	ssj, err := sysbenchSystem(bench.NewSSJ, top, cfg)
	if err != nil {
		return err
	}
	m, err = bench.Run(opts(), ssj.NewClient, cfg.ReadWrite())
	ssj.Close()
	if err != nil {
		return err
	}
	row("SSJ(1)", "ReadWrite", m)

	ssp, err := sysbenchSystem(bench.NewSSP, top, cfg)
	if err != nil {
		return err
	}
	m, err = bench.Run(opts(), ssp.NewClient, cfg.ReadWrite())
	ssp.Close()
	if err != nil {
		return err
	}
	row("SSP(1)", "ReadWrite", m)
	return nil
}

// fig9 reproduces Fig. 9: TPCC across systems (TPS and 90T).
func fig9() error {
	header(fmt.Sprintf("Fig. 9 — TPCC (%d warehouses, %d sources, %d threads)",
		*flagWarehouses, *flagSources, *flagThreads))
	cfg := tpcc.DefaultConfig(*flagWarehouses)
	build := func(name string, kernelOf func() (*bench.System, error)) error {
		sys, err := kernelOf()
		if err != nil {
			return err
		}
		defer sys.Close()
		if err := bench.PrepareOn(sys, func(c bench.Client) error {
			return tpcc.Prepare(c, cfg)
		}); err != nil {
			return err
		}
		m, err := bench.Run(opts(), sys.NewClient, cfg.Mix())
		if err != nil {
			return err
		}
		row(name, "TPCC-mix", m)
		return nil
	}
	sources := make([]string, *flagSources)
	for i := range sources {
		sources[i] = fmt.Sprintf("ds%d", i)
	}
	newTPCCKernel := func(wrap func(bench.Topology) (*bench.System, error)) func() (*bench.System, error) {
		return func() (*bench.System, error) {
			rules, err := tpcc.Rules(sources)
			if err != nil {
				return nil, err
			}
			top := bench.Topology{Sources: *flagSources, MaxCon: 4}.WithRules(rules)
			return wrap(top)
		}
	}
	if err := build("SSJ", newTPCCKernel(bench.NewSSJ)); err != nil {
		return err
	}
	if err := build("SSP", newTPCCKernel(bench.NewSSP)); err != nil {
		return err
	}
	// Single-node reference.
	if err := build("Single", func() (*bench.System, error) {
		return bench.NewSingle("Single", 0)
	}); err != nil {
		return err
	}
	return nil
}

// fig10 reproduces Fig. 10: scalability with data size.
func fig10() error {
	header(fmt.Sprintf("Fig. 10 — data sizes (%d sources, %d threads, Read Write)", *flagSources, *flagThreads))
	for _, rows := range []int{*flagRows, *flagRows * 3, *flagRows * 5, *flagRows * 10} {
		cfg := sysbench.DefaultConfig(rows)
		sys, err := sysbenchSystem(bench.NewSSJ, bench.Topology{Sources: *flagSources, MaxCon: 4}, cfg)
		if err != nil {
			return err
		}
		m, err := bench.Run(opts(), sys.NewClient, cfg.ReadWrite())
		sys.Close()
		if err != nil {
			return err
		}
		row("SSJ", fmt.Sprintf("rows=%d", rows), m)

		single, err := singleSysbench("Single", cfg)
		if err != nil {
			return err
		}
		m, err = bench.Run(opts(), single.NewClient, cfg.ReadWrite())
		single.Close()
		if err != nil {
			return err
		}
		row("Single", fmt.Sprintf("rows=%d", rows), m)
	}
	return nil
}

// fig11 reproduces Fig. 11: scalability with request concurrency.
func fig11() error {
	header(fmt.Sprintf("Fig. 11 — concurrency (%d rows, %d sources, Read Write)", *flagRows, *flagSources))
	cfg := sysbench.DefaultConfig(*flagRows)
	sys, err := sysbenchSystem(bench.NewSSJ, bench.Topology{Sources: *flagSources, MaxCon: 4}, cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	for _, threads := range []int{1, 8, 32, 64, 128, 256} {
		o := opts()
		o.Workers = threads
		m, err := bench.Run(o, sys.NewClient, cfg.ReadWrite())
		if err != nil {
			return err
		}
		row("SSJ", fmt.Sprintf("threads=%d", threads), m)
	}
	return nil
}

// fig12 reproduces Fig. 12: scalability with the number of data servers.
func fig12() error {
	header(fmt.Sprintf("Fig. 12 — data servers (%d rows, %d threads, Read Write)", *flagRows, *flagThreads))
	cfg := sysbench.DefaultConfig(*flagRows)
	for _, n := range []int{1, 2, 3, 4, 5} {
		for _, spec := range []struct {
			name  string
			build func(bench.Topology) (*bench.System, error)
		}{{"SSJ", bench.NewSSJ}, {"SSP", bench.NewSSP}} {
			sys, err := sysbenchSystem(spec.build, bench.Topology{Sources: n, MaxCon: 4}, cfg)
			if err != nil {
				return err
			}
			m, err := bench.Run(opts(), sys.NewClient, cfg.ReadWrite())
			sys.Close()
			if err != nil {
				return err
			}
			row(spec.name, fmt.Sprintf("servers=%d", n), m)
		}
	}
	return nil
}

// fig13 reproduces Fig. 13: the three transaction types.
func fig13() error {
	header(fmt.Sprintf("Fig. 13 — transaction types (%d rows, %d sources, %d threads, Read Write)",
		*flagRows, *flagSources, *flagThreads))
	cfg := sysbench.DefaultConfig(*flagRows)
	for _, typ := range []transaction.Type{transaction.Local, transaction.XA, transaction.Base} {
		sys, err := sysbenchSystem(bench.NewSSJ,
			bench.Topology{Sources: *flagSources, MaxCon: 4, TxType: typ}, cfg)
		if err != nil {
			return err
		}
		m, err := bench.Run(opts(), sys.NewClient, cfg.ReadWrite())
		sys.Close()
		if err != nil {
			return err
		}
		row("SSJ", typ.String(), m)
	}
	return nil
}

// fig14 reproduces Fig. 14: binding tables vs common (cartesian) join.
func fig14() error {
	header(fmt.Sprintf("Fig. 14 — binding vs common join (%d rows per table, %d threads)",
		*flagRows/10, *flagThreads))
	joinTx := func(rows int) bench.TxFunc {
		return func(c bench.Client, rng *rand.Rand) error {
			id := int64(rng.Intn(rows) + 1)
			_, err := c.Query(
				"SELECT a.c, b.c FROM t_a a JOIN t_b b ON a.id = b.id WHERE a.id IN (?, ?)",
				sqltypes.NewInt(id), sqltypes.NewInt(id+1))
			return err
		}
	}
	rows := *flagRows / 10
	for _, binding := range []bool{true, false} {
		top := bench.Topology{
			Sources: 2, TablesPerSource: 10, MaxCon: 4,
			Tables: []string{"t_a", "t_b"}, Binding: binding,
		}
		sys, err := bench.NewSSJ(top)
		if err != nil {
			return err
		}
		err = bench.PrepareOn(sys, func(c bench.Client) error {
			for _, table := range []string{"t_a", "t_b"} {
				cfg := sysbench.DefaultConfig(rows)
				cfg.Table = table
				if err := sysbench.Prepare(c, cfg); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			sys.Close()
			return err
		}
		label := "binding"
		if !binding {
			label = "common"
		}
		m, err := bench.Run(opts(), sys.NewClient, joinTx(rows))
		sys.Close()
		if err != nil {
			return err
		}
		row("SSJ", label, m)
	}
	return nil
}

// fig15 reproduces Fig. 15: the MaxCon sweep with a single thread and a
// broadcast range query; per-source latency makes connection parallelism
// visible, as network IO does in the paper's testbed.
func fig15() error {
	header(fmt.Sprintf("Fig. 15 — MaxCon (single thread, range query, %d rows)", *flagRows))
	cfg := sysbench.DefaultConfig(*flagRows)
	for _, maxCon := range []int{1, 2, 5, 10, 20} {
		sys, err := sysbenchSystem(bench.NewSSJ, bench.Topology{
			Sources: 2, MaxCon: maxCon, Latency: 300 * time.Microsecond,
		}, cfg)
		if err != nil {
			return err
		}
		rangeQuery := func(c bench.Client, rng *rand.Rand) error {
			// k is unsharded, so the query fans out to every shard.
			_, err := c.Query("SELECT COUNT(*) FROM sbtest WHERE k BETWEEN ? AND ?",
				sqltypes.NewInt(1), sqltypes.NewInt(int64(rng.Intn(cfg.Rows)+1)))
			return err
		}
		o := opts()
		o.Workers = 1
		m, err := bench.Run(o, sys.NewClient, rangeQuery)
		sys.Close()
		if err != nil {
			return err
		}
		row("SSJ", fmt.Sprintf("maxcon=%d", maxCon), m)
	}
	return nil
}
