// Command datanode runs one storage engine as a network server — the
// stand-in for a MySQL/PostgreSQL instance on a data server. Point the
// proxy or the embedded driver at its address to build the paper's
// multi-server topology on real sockets.
//
// Usage:
//
//	datanode -listen 127.0.0.1:7301 -name ds0
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"shardingsphere/internal/obs"
	"shardingsphere/internal/proxy"
	"shardingsphere/internal/sqlexec"
	"shardingsphere/internal/storage"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7301", "address to listen on")
	name := flag.String("name", "ds0", "data source name")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address for pprof and /metrics (empty = off)")
	idleTO := flag.Duration("idle-timeout", 5*time.Minute, "per-connection frame read deadline (0 = none)")
	flag.Parse()

	engine := storage.NewEngine(*name)
	srv := proxy.NewServer(&proxy.NodeBackend{Processor: sqlexec.NewProcessor(engine)})
	srv.SetIdleTimeout(*idleTO)
	if *obsAddr != "" {
		o := obs.NewServer()
		o.RegisterSnapshot("", srv.MetricsSnapshot)
		bound, err := o.Start(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("observability endpoint on http://%s (/metrics, /debug/pprof/)\n", bound)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("datanode %s listening on %s\n", *name, addr)
	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
