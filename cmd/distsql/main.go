// Command distsql is an interactive SQL/DistSQL shell against a proxy —
// the "use the middleware like a database" experience of paper Section
// V-A. Each input line is one statement; results print as aligned tables.
//
// Usage:
//
//	distsql -addr 127.0.0.1:7300
//	echo "SHOW SHARDING TABLE RULES;" | distsql -addr 127.0.0.1:7300
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"shardingsphere/internal/resource"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/pkg/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7300", "proxy address")
	flag.Parse()

	conn, err := client.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer conn.Close()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminalPrompt()
	if interactive {
		fmt.Print("distsql> ")
	}
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			if interactive {
				fmt.Print("distsql> ")
			}
			continue
		}
		if strings.EqualFold(line, "exit") || strings.EqualFold(line, "quit") {
			return
		}
		run(conn, line)
		if interactive {
			fmt.Print("distsql> ")
		}
	}
}

func isTerminalPrompt() bool {
	info, err := os.Stdin.Stat()
	return err == nil && (info.Mode()&os.ModeCharDevice) != 0
}

// run executes one statement, printing rows or the affected count.
func run(conn *client.Conn, sql string) {
	res, err := conn.Do(sql)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	if res.Rows != nil {
		printRows(res.Rows)
		return
	}
	fmt.Printf("OK, %d row(s) affected\n", res.Exec.Affected)
}

func printRows(rs resource.ResultSet) {
	cols := rs.Columns()
	rows, err := resource.ReadAll(rs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(rows))
	for ri, row := range rows {
		cells[ri] = make([]string, len(cols))
		for ci := range cols {
			v := ""
			if ci < len(row) {
				v = renderValue(row[ci])
			}
			cells[ri][ci] = v
			if len(v) > widths[ci] {
				widths[ci] = len(v)
			}
		}
	}
	line := func() {
		for _, w := range widths {
			fmt.Print("+", strings.Repeat("-", w+2))
		}
		fmt.Println("+")
	}
	line()
	for i, c := range cols {
		fmt.Printf("| %-*s ", widths[i], c)
	}
	fmt.Println("|")
	line()
	for _, row := range cells {
		for i, v := range row {
			fmt.Printf("| %-*s ", widths[i], v)
		}
		fmt.Println("|")
	}
	line()
	fmt.Printf("%d row(s)\n", len(rows))
}

func renderValue(v sqltypes.Value) string {
	if v.IsNull() {
		return "NULL"
	}
	return v.AsString()
}
