// Command ssproxy runs ShardingSphere-Proxy (paper Section VII-A): a
// standalone server that fronts a fleet of data nodes and speaks the wire
// protocol to any client. Data sources are either embedded in-process
// engines (-embedded, the zero-setup mode) or remote datanode servers
// (-source name=addr, repeatable). Sharding rules are configured at
// runtime through DistSQL.
//
// Usage:
//
//	ssproxy -listen 127.0.0.1:7300 -embedded ds0,ds1
//	ssproxy -listen 127.0.0.1:7300 -source ds0=127.0.0.1:7301 -source ds1=127.0.0.1:7302
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"shardingsphere/internal/admission"
	"shardingsphere/internal/core"
	"shardingsphere/internal/distsql"
	"shardingsphere/internal/governor"
	"shardingsphere/internal/obs"
	"shardingsphere/internal/proxy"
	"shardingsphere/internal/registry"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/storage"
	"shardingsphere/pkg/client"
	"time"
)

type sourceFlags []string

func (s *sourceFlags) String() string     { return strings.Join(*s, ",") }
func (s *sourceFlags) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	listen := flag.String("listen", "127.0.0.1:7300", "address to listen on")
	embedded := flag.String("embedded", "", "comma-separated embedded data source names")
	maxCon := flag.Int("maxcon", 4, "max connections per data source per query")
	rate := flag.Float64("rate", 0, "statement rate limit per second (0 = unlimited)")
	health := flag.Duration("health", 5*time.Second, "health check interval (0 = off)")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address for pprof and /metrics (empty = off)")
	maxConns := flag.Int("max-connections", 0, "max concurrent client connections (0 = unlimited)")
	admQueue := flag.Int("admission-queue", 0, "admission queue depth (0 = default 8x concurrency)")
	admConc := flag.Int("admission-concurrency", 0, "max statements executing at once (0 = default 4x GOMAXPROCS)")
	admWait := flag.Duration("admission-max-wait", 100*time.Millisecond, "max predicted queue wait before shedding")
	idleTO := flag.Duration("idle-timeout", 5*time.Minute, "per-connection frame read deadline (0 = none)")
	drainTO := flag.Duration("drain-timeout", 5*time.Second, "grace period to drain in-flight statements on shutdown")
	var remotes sourceFlags
	flag.Var(&remotes, "source", "remote data source as name=host:port (repeatable)")
	flag.Parse()

	sources := map[string]*resource.DataSource{}
	if *embedded != "" {
		for _, name := range strings.Split(*embedded, ",") {
			name = strings.TrimSpace(name)
			sources[name] = resource.NewEmbedded(storage.NewEngine(name), nil)
		}
	}
	for _, spec := range remotes {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fmt.Fprintf(os.Stderr, "bad -source %q (want name=host:port)\n", spec)
			os.Exit(2)
		}
		sources[parts[0]] = client.NewRemoteDataSource(parts[0], parts[1], nil)
	}
	if len(sources) == 0 {
		fmt.Fprintln(os.Stderr, "no data sources: use -embedded or -source")
		os.Exit(2)
	}

	reg := registry.New()
	kernel, err := core.New(core.Config{Sources: sources, MaxCon: *maxCon, Registry: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gov := governor.New(reg, kernel.Executor())
	distsql.Install(kernel, gov)
	sess := reg.NewSession()
	gov.RegisterInstance(sess, "proxy-"+*listen, "proxy")
	if *health > 0 {
		gov.StartHealthCheck(*health)
		kernel.AddGate(gov)
	}

	srv := proxy.NewServer(&proxy.KernelBackend{Kernel: kernel})
	gov.RegisterMetrics("proxy", srv.Metrics)
	ctl := admission.NewController(admission.Config{
		MaxConcurrent: *admConc,
		QueueDepth:    *admQueue,
		MaxQueueWait:  *admWait,
		MaxConns:      *maxConns,
	})
	ctl.SetGate(gov)
	srv.SetAdmission(ctl)
	kernel.SetAdmission(ctl)
	srv.SetChaosFrontend(kernel.Chaos())
	srv.SetIdleTimeout(*idleTO)
	srv.SetDrainTimeout(*drainTO)
	if *rate > 0 {
		srv.SetLimiter(governor.NewRateLimiter(*rate, int(*rate)))
	}
	if *obsAddr != "" {
		o := obs.NewServer()
		o.Register("", gov.Metrics)
		o.RegisterSnapshot("proxy", kernel.Telemetry().MetricsSnapshot)
		bound, err := o.Start(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("observability endpoint on http://%s (/metrics, /debug/pprof/)\n", bound)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ssproxy listening on %s (%d data sources)\n", addr, len(sources))
	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
