// E-commerce credit payments — modeled on the paper's JD Baitiao case
// study (Section VII-B): hash sharding on user id to kill hot spots,
// binding tables so the order/order-item join never goes cartesian, and
// XA transactions for payment consistency across data sources.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"shardingsphere/pkg/shardingdb"
)

const (
	sources = 4
	shards  = 8
	users   = 200
)

func main() {
	var dss []shardingdb.DataSourceConfig
	for i := 0; i < sources; i++ {
		dss = append(dss, shardingdb.DataSourceConfig{Name: fmt.Sprintf("ds%d", i)})
	}
	db, err := shardingdb.Open(shardingdb.Config{
		DataSources:            dss,
		MaxCon:                 4,
		DefaultTransactionType: "XA", // payments want 2PC
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()

	// Both tables shard by user id with the same algorithm and are bound:
	// the order ↔ item join stays shard-local (paper Section VI-B).
	resources := "ds0, ds1, ds2, ds3"
	for _, table := range []string{"t_order", "t_order_item"} {
		mustExec(s, fmt.Sprintf(`CREATE SHARDING TABLE RULE %s (
			RESOURCES(%s),
			SHARDING_COLUMN = user_id,
			TYPE = hash_mod,
			PROPERTIES("sharding-count" = %d)
		)`, table, resources, shards))
	}
	mustExec(s, "CREATE BINDING TABLE RULES (t_order, t_order_item)")

	mustExec(s, `CREATE TABLE t_order (
		order_id INT PRIMARY KEY, user_id INT NOT NULL,
		status VARCHAR(12), total FLOAT)`)
	mustExec(s, `CREATE TABLE t_order_item (
		item_id INT PRIMARY KEY, order_id INT, user_id INT NOT NULL,
		sku VARCHAR(20), price FLOAT)`)

	// Place orders inside XA transactions: the order row and its items may
	// live on different actual tables, and during shopping festivals a
	// torn order is not acceptable.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	itemSeq := 0
	placed := 0
	for orderID := 1; orderID <= 500; orderID++ {
		user := rng.Intn(users)
		nItems := 1 + rng.Intn(4)
		err := s.WithTx(func(s *shardingdb.Session) error {
			total := 0.0
			for i := 0; i < nItems; i++ {
				itemSeq++
				price := 10 + rng.Float64()*90
				total += price
				if _, err := s.Exec(
					"INSERT INTO t_order_item (item_id, order_id, user_id, sku, price) VALUES (?, ?, ?, ?, ?)",
					shardingdb.Int(int64(itemSeq)), shardingdb.Int(int64(orderID)),
					shardingdb.Int(int64(user)), shardingdb.String(fmt.Sprintf("sku-%d", rng.Intn(50))),
					shardingdb.Float(price)); err != nil {
					return err
				}
			}
			_, err := s.Exec(
				"INSERT INTO t_order (order_id, user_id, status, total) VALUES (?, ?, 'paid', ?)",
				shardingdb.Int(int64(orderID)), shardingdb.Int(int64(user)), shardingdb.Float(total))
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		placed++
	}
	fmt.Printf("placed %d orders under XA\n", placed)

	// A user's order history: binding join routes pairwise, not cartesian.
	user := 42
	rows, err := s.QueryAll(`SELECT o.order_id, o.total, i.sku
		FROM t_order o JOIN t_order_item i ON o.order_id = i.order_id
		WHERE o.user_id = ? AND i.user_id = ?
		ORDER BY o.order_id LIMIT 5`,
		shardingdb.Int(int64(user)), shardingdb.Int(int64(user)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user %d order lines (%d shown):\n", user, len(rows))
	for _, r := range rows {
		fmt.Printf("  order %v  total %.2f  %v\n", r[0], r[1].AsFloat(), r[2])
	}

	// Business dashboards aggregate across every shard.
	rows, err = s.QueryAll(`SELECT status, COUNT(*), SUM(total) FROM t_order GROUP BY status ORDER BY status`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("status=%v orders=%v revenue=%.2f\n", r[0], r[1], r[2].AsFloat())
	}

	// Where would a hot user's traffic go? PREVIEW shows the plan.
	rows, _ = s.QueryAll("PREVIEW SELECT * FROM t_order WHERE user_id = 42")
	fmt.Printf("hot user routes to a single node: %v → %v\n", rows[0][0], rows[0][1])
}

func mustExec(s *shardingdb.Session, sql string) {
	if _, err := s.Exec(sql); err != nil {
		log.Fatal(err)
	}
}
