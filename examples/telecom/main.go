// Telecom billing — modeled on the paper's China Telecom BestPay case
// study (Section VII-B): payments split into two databases by
// merchant_code % 2, and inside each database further split horizontally
// by month, so no single physical table grows past its comfort zone.
//
// The monthly layout uses a standard (non-auto) rule built
// programmatically: database strategy MOD on merchant_code, table
// strategy INTERVAL on the payment time.
//
//	go run ./examples/telecom
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shardingsphere/internal/sharding"
	"shardingsphere/pkg/shardingdb"
)

var months = []string{"202101", "202102", "202103"}

func buildRules() (*sharding.RuleSet, error) {
	dbAlgo, err := sharding.New("MOD", map[string]string{"sharding-count": "2"})
	if err != nil {
		return nil, err
	}
	tblAlgo, err := sharding.New("INTERVAL", map[string]string{
		"datetime-lower":          "2021-01-01 00:00:00",
		"sharding-suffix-pattern": "yyyyMM",
	})
	if err != nil {
		return nil, err
	}
	rule := &sharding.TableRule{
		LogicTable:    "t_payment",
		DBStrategy:    &sharding.Strategy{Column: "merchant_code", Algorithm: dbAlgo},
		TableStrategy: &sharding.Strategy{Column: "pay_time", Algorithm: tblAlgo},
	}
	for _, ds := range []string{"ds0", "ds1"} {
		for _, m := range months {
			rule.DataNodes = append(rule.DataNodes, sharding.DataNode{
				DataSource: ds,
				Table:      "t_payment_" + m,
			})
		}
	}
	rs := sharding.NewRuleSet()
	rs.AddRule(rule)
	rs.DefaultDataSource = "ds0"
	return rs, nil
}

func main() {
	rules, err := buildRules()
	if err != nil {
		log.Fatal(err)
	}
	db, err := shardingdb.Open(shardingdb.Config{
		DataSources: []shardingdb.DataSourceConfig{{Name: "ds0"}, {Name: "ds1"}},
		Rules:       rules,
		MaxCon:      6,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()

	// The logic DDL materializes every month × database shard.
	if _, err := s.Exec(`CREATE TABLE t_payment (
		pay_id INT PRIMARY KEY,
		merchant_code INT NOT NULL,
		pay_time VARCHAR(20) NOT NULL,
		amount FLOAT)`); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	id := 0
	for _, m := range months {
		for day := 1; day <= 25; day += 3 {
			for merchant := 100; merchant < 120; merchant++ {
				id++
				ts := fmt.Sprintf("2021-%s-%02d 10:30:00", m[4:], day)
				if _, err := s.Exec(
					"INSERT INTO t_payment (pay_id, merchant_code, pay_time, amount) VALUES (?, ?, ?, ?)",
					shardingdb.Int(int64(id)), shardingdb.Int(int64(merchant)),
					shardingdb.String(ts), shardingdb.Float(5+rng.Float64()*500)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Printf("loaded %d payments across 2 databases × %d months\n", id, len(months))

	// The BestPay query shape: one merchant, one month → exactly one
	// physical table answers (merchant picks the database, the time range
	// picks the monthly table).
	rows, err := s.QueryAll("PREVIEW SELECT SUM(amount) FROM t_payment WHERE merchant_code = 107 AND pay_time BETWEEN '2021-02-01 00:00:00' AND '2021-02-28 23:59:59'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("merchant-month statement routes to:")
	for _, r := range rows {
		fmt.Printf("  %v → %v\n", r[0], r[1])
	}
	sum, err := s.QueryAll("SELECT COUNT(*), SUM(amount) FROM t_payment WHERE merchant_code = 107 AND pay_time BETWEEN '2021-02-01 00:00:00' AND '2021-02-28 23:59:59'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merchant 107, Feb 2021: %v payments, %.2f total\n", sum[0][0], sum[0][1].AsFloat())

	// A quarter-wide report for one merchant still touches only its
	// database (3 monthly tables, not 6).
	rows, err = s.QueryAll(`SELECT COUNT(*), SUM(amount) FROM t_payment
		WHERE merchant_code = 111 AND pay_time BETWEEN '2021-01-01 00:00:00' AND '2021-03-31 23:59:59'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merchant 111, Q1 2021: %v payments, %.2f total\n", rows[0][0], rows[0][1].AsFloat())

	// Global revenue aggregates across everything.
	rows, err = s.QueryAll("SELECT COUNT(*), AVG(amount) FROM t_payment")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %v payments, %.2f average\n", rows[0][0], rows[0][1].AsFloat())
}
