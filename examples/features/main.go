// Pluggable features — read-write splitting, transparent column
// encryption and shadow-database routing combined with sharding (paper
// Sections IV-C, VI): the same application SQL, decorated by three
// independently pluggable kernel features.
//
//	go run ./examples/features
package main

import (
	"context"
	"fmt"
	"log"

	"shardingsphere/internal/core"
	"shardingsphere/internal/features/encrypt"
	"shardingsphere/internal/features/readwrite"
	"shardingsphere/internal/features/shadow"
	"shardingsphere/internal/sharding"
	"shardingsphere/pkg/shardingdb"
)

func main() {
	// Physical sources: a primary with two replicas (read-write
	// splitting group "ds_rw"), plus a shadow database for test traffic.
	rw, err := readwrite.New(&readwrite.Group{
		Name:     "ds_rw",
		Primary:  "primary0",
		Replicas: []string{"replica0", "replica1"},
	})
	if err != nil {
		log.Fatal(err)
	}
	enc := encrypt.New(encrypt.ColumnRule{
		Table:     "t_user",
		Column:    "phone",
		Encryptor: encrypt.NewAES("demo-secret"),
	})
	sh := shadow.New(shadow.Config{
		Column:  "is_shadow",
		Mapping: map[string]string{"primary0": "shadow0"},
	})

	// Unsharded tables live on the logical source "ds_rw", which the
	// read-write feature expands to primary0/replica0/replica1.
	rules := sharding.NewRuleSet()
	rules.DefaultDataSource = "ds_rw"
	db, err := shardingdb.Open(shardingdb.Config{
		DataSources: []shardingdb.DataSourceConfig{
			{Name: "primary0"}, {Name: "replica0"}, {Name: "replica1"}, {Name: "shadow0"},
		},
		Rules:    rules,
		Features: []core.Feature{rw, enc, sh},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.Session()
	defer s.Close()

	// In this demo the replicas are independent engines, so create the
	// table everywhere by hand (a real deployment replicates primary →
	// replica; see DESIGN.md).
	ddl := `CREATE TABLE t_user (uid INT PRIMARY KEY, phone VARCHAR(64), is_shadow INT)`
	for _, ds := range []string{"primary0", "replica0", "replica1", "shadow0"} {
		if err := execOn(db, ds, ddl); err != nil {
			log.Fatal(err)
		}
	}

	// Writes go to the primary; the phone number is encrypted before it
	// leaves the kernel.
	if _, err := s.Exec("INSERT INTO t_user (uid, phone, is_shadow) VALUES (1, '13800001111', 0)"); err != nil {
		log.Fatal(err)
	}

	// What is physically stored? Ciphertext.
	raw, err := queryOn(db, "primary0", "SELECT phone FROM t_user WHERE uid = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored on primary0:   %s\n", raw)

	// What does the application read? Plaintext — and equality predicates
	// on the encrypted column still work (deterministic encryption).
	// Reads route to replicas; this row lives only on the primary here,
	// so read it in a transaction, which pins the primary.
	s.Begin()
	rows, err := s.QueryAll("SELECT phone FROM t_user WHERE phone = '13800001111'")
	if err != nil {
		log.Fatal(err)
	}
	s.Rollback()
	fmt.Printf("application reads:    %s\n", rows[0][0].S)

	// Replica rotation: plain reads alternate across replicas. The
	// direct inserts store ciphertext, as a real replication stream would.
	cipher := encrypt.NewAES("demo-secret")
	for _, ds := range []string{"replica0", "replica1"} {
		marker := cipher.Encrypt("replica-of-" + ds)
		if err := execOn(db, ds, "INSERT INTO t_user (uid, phone, is_shadow) VALUES (100, '"+marker+"', 0)"); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		rows, err := s.QueryAll("SELECT phone FROM t_user WHERE uid = 100")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %d served by:     %s\n", i+1, rows[0][0].S)
	}

	// Shadow traffic: the is_shadow marker diverts the whole statement to
	// the shadow database — production data is untouched.
	if _, err := s.Exec("INSERT INTO t_user (uid, phone, is_shadow) VALUES (2, '13999990000', 1)"); err != nil {
		log.Fatal(err)
	}
	prodCount, _ := queryOn(db, "primary0", "SELECT COUNT(*) FROM t_user")
	shadowCount, _ := queryOn(db, "shadow0", "SELECT COUNT(*) FROM t_user")
	fmt.Printf("rows on primary0: %s, rows on shadow0: %s\n", prodCount, shadowCount)
}

// execOn runs SQL directly on one physical source (bypassing features).
func execOn(db *shardingdb.DB, ds, sql string) error {
	src, err := db.Kernel().Executor().Source(ds)
	if err != nil {
		return err
	}
	conn, err := src.Acquire()
	if err != nil {
		return err
	}
	defer conn.Release()
	_, err = conn.Exec(context.Background(), sql)
	return err
}

func queryOn(db *shardingdb.DB, ds, sql string) (string, error) {
	src, err := db.Kernel().Executor().Source(ds)
	if err != nil {
		return "", err
	}
	conn, err := src.Acquire()
	if err != nil {
		return "", err
	}
	defer conn.Release()
	rs, err := conn.Query(context.Background(), sql)
	if err != nil {
		return "", err
	}
	rows, err := rs.Next()
	rs.Close()
	if err != nil {
		return "", err
	}
	return rows[0].AsString(), nil
}
