// Quickstart: shard one table over two data sources with DistSQL and use
// the fleet like a single database — the paper's core promise.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shardingsphere/pkg/shardingdb"
)

func main() {
	// Two data sources (embedded engines; point Addr at datanode servers
	// for a networked deployment).
	db, err := shardingdb.Open(shardingdb.Config{
		DataSources: []shardingdb.DataSourceConfig{
			{Name: "ds0"},
			{Name: "ds1"},
		},
		MaxCon: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	s := db.Session()
	defer s.Close()

	// AutoTable (paper Section V-A): declare resources and shard count;
	// the platform computes the data distribution.
	must(s.Exec(`CREATE SHARDING TABLE RULE t_order (
		RESOURCES(ds0, ds1),
		SHARDING_COLUMN = user_id,
		TYPE = hash_mod,
		PROPERTIES("sharding-count" = 4)
	)`))

	// Logic DDL fans out: every shard is created on its data source.
	must(s.Exec(`CREATE TABLE t_order (
		order_id INT PRIMARY KEY,
		user_id INT NOT NULL,
		amount FLOAT,
		note VARCHAR(64)
	)`))

	// Writes route by the sharding key; multi-row inserts split per shard.
	for i := 1; i <= 100; i++ {
		must(s.Exec("INSERT INTO t_order (order_id, user_id, amount, note) VALUES (?, ?, ?, ?)",
			shardingdb.Int(int64(i)), shardingdb.Int(int64(i%10)),
			shardingdb.Float(float64(i)*2.5), shardingdb.String("n/a")))
	}

	// Point query: a single shard answers.
	rows, err := s.QueryAll("SELECT order_id, amount FROM t_order WHERE user_id = ? ORDER BY order_id LIMIT 3",
		shardingdb.Int(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user 7's first orders:")
	for _, r := range rows {
		fmt.Printf("  order %v  amount %v\n", r[0], r[1])
	}

	// Cross-shard aggregation: partial aggregates merge transparently
	// (AVG decomposes into SUM and COUNT behind the scenes).
	rows, err = s.QueryAll("SELECT COUNT(*), SUM(amount), AVG(amount) FROM t_order")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders=%v total=%v avg=%v\n", rows[0][0], rows[0][1], rows[0][2])

	// Cross-shard ORDER BY + pagination: each shard returns a prefix, the
	// stream merger picks the true page.
	rows, err = s.QueryAll("SELECT order_id, amount FROM t_order ORDER BY amount DESC LIMIT 5, 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("page 2 of the leaderboard:")
	for _, r := range rows {
		fmt.Printf("  order %v  amount %v\n", r[0], r[1])
	}

	// A distributed transaction spanning both sources.
	err = s.WithTx(func(s *shardingdb.Session) error {
		if _, err := s.Exec("UPDATE t_order SET note = 'bulk' WHERE user_id IN (1, 2)"); err != nil {
			return err
		}
		_, err := s.Exec("DELETE FROM t_order WHERE user_id = 3")
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	rows, _ = s.QueryAll("SELECT COUNT(*) FROM t_order")
	fmt.Printf("after transaction: %v orders remain\n", rows[0][0])

	// The route is inspectable with DistSQL's PREVIEW.
	rows, _ = s.QueryAll("PREVIEW SELECT * FROM t_order WHERE user_id = 7")
	fmt.Printf("user 7 routes to: %v → %v\n", rows[0][0], rows[0][1])
}

func must(_ shardingdb.ExecResult, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
