// Package level benchmarks: one per paper table/figure (Tables III/IV,
// Figs. 9–15) plus ablations for the design choices DESIGN.md calls out.
// cmd/benchmark is the full harness with TPS/percentile output; these
// testing.B benches measure single-stream transaction latency per system
// so `go test -bench=.` regenerates each comparison's shape quickly.
package shardingsphere

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"shardingsphere/internal/bench"
	"shardingsphere/internal/bench/sysbench"
	"shardingsphere/internal/bench/tpcc"
	"shardingsphere/internal/merge"
	"shardingsphere/internal/resource"
	"shardingsphere/internal/rewrite"
	"shardingsphere/internal/sqlparser"
	"shardingsphere/internal/sqltypes"
	"shardingsphere/internal/transaction"
)

const benchRows = 20000

func mustSystem(b *testing.B, build func() (*bench.System, error)) *bench.System {
	b.Helper()
	sys, err := build()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	return sys
}

func loadSysbench(b *testing.B, sys *bench.System, cfg sysbench.Config) {
	b.Helper()
	if err := bench.PrepareOn(sys, func(c bench.Client) error {
		return sysbench.Prepare(c, cfg)
	}); err != nil {
		b.Fatal(err)
	}
}

func runTx(b *testing.B, sys *bench.System, tx bench.TxFunc) {
	b.Helper()
	c, err := sys.NewClient(0)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx(c, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table III: Sysbench scenarios × systems ---

func benchSysbench(b *testing.B, build func(bench.Topology) (*bench.System, error), scenario func(sysbench.Config) bench.TxFunc) {
	cfg := sysbench.DefaultConfig(benchRows)
	sys := mustSystem(b, func() (*bench.System, error) { return build(bench.Topology{Sources: 2, MaxCon: 4}) })
	loadSysbench(b, sys, cfg)
	runTx(b, sys, scenario(cfg))
}

func benchSingle(b *testing.B, scenario func(sysbench.Config) bench.TxFunc) {
	cfg := sysbench.DefaultConfig(benchRows)
	sys := mustSystem(b, func() (*bench.System, error) { return bench.NewSingle("single", 0) })
	loadSysbench(b, sys, cfg)
	runTx(b, sys, scenario(cfg))
}

func BenchmarkTable3_PointSelect_SSJ(b *testing.B) {
	benchSysbench(b, bench.NewSSJ, func(c sysbench.Config) bench.TxFunc { return c.PointSelect() })
}

func BenchmarkTable3_PointSelect_SSP(b *testing.B) {
	benchSysbench(b, bench.NewSSP, func(c sysbench.Config) bench.TxFunc { return c.PointSelect() })
}

func BenchmarkTable3_PointSelect_Naive(b *testing.B) {
	benchSysbench(b, bench.NewNaive, func(c sysbench.Config) bench.TxFunc { return c.PointSelect() })
}

func BenchmarkTable3_PointSelect_Single(b *testing.B) {
	benchSingle(b, func(c sysbench.Config) bench.TxFunc { return c.PointSelect() })
}

func BenchmarkTable3_ReadOnly_SSJ(b *testing.B) {
	benchSysbench(b, bench.NewSSJ, func(c sysbench.Config) bench.TxFunc { return c.ReadOnly() })
}

func BenchmarkTable3_ReadOnly_SSP(b *testing.B) {
	benchSysbench(b, bench.NewSSP, func(c sysbench.Config) bench.TxFunc { return c.ReadOnly() })
}

func BenchmarkTable3_ReadWrite_SSJ(b *testing.B) {
	benchSysbench(b, bench.NewSSJ, func(c sysbench.Config) bench.TxFunc { return c.ReadWrite() })
}

func BenchmarkTable3_ReadWrite_SSP(b *testing.B) {
	benchSysbench(b, bench.NewSSP, func(c sysbench.Config) bench.TxFunc { return c.ReadWrite() })
}

func BenchmarkTable3_WriteOnly_SSJ(b *testing.B) {
	benchSysbench(b, bench.NewSSJ, func(c sysbench.Config) bench.TxFunc { return c.WriteOnly() })
}

func BenchmarkTable3_WriteOnly_Single(b *testing.B) {
	benchSingle(b, func(c sysbench.Config) bench.TxFunc { return c.WriteOnly() })
}

// --- Table IV: one server, big table vs 10 small tables ---

func BenchmarkTable4_ReadWrite_MS(b *testing.B) {
	benchSingle(b, func(c sysbench.Config) bench.TxFunc { return c.ReadWrite() })
}

func BenchmarkTable4_ReadWrite_SSJ1(b *testing.B) {
	cfg := sysbench.DefaultConfig(benchRows)
	sys := mustSystem(b, func() (*bench.System, error) {
		return bench.NewSSJ(bench.Topology{Sources: 1, TablesPerSource: 10, MaxCon: 4})
	})
	loadSysbench(b, sys, cfg)
	runTx(b, sys, cfg.ReadWrite())
}

// --- Fig. 9: TPCC ---

func benchTPCC(b *testing.B, build func() (*bench.System, error)) {
	cfg := tpcc.DefaultConfig(2)
	sys := mustSystem(b, build)
	if err := bench.PrepareOn(sys, func(c bench.Client) error {
		return tpcc.Prepare(c, cfg)
	}); err != nil {
		b.Fatal(err)
	}
	runTx(b, sys, cfg.Mix())
}

func BenchmarkFig9_TPCC_SSJ(b *testing.B) {
	benchTPCC(b, func() (*bench.System, error) {
		rules, err := tpcc.Rules([]string{"ds0", "ds1"})
		if err != nil {
			return nil, err
		}
		return bench.NewSSJ(bench.Topology{Sources: 2, MaxCon: 4}.WithRules(rules))
	})
}

func BenchmarkFig9_TPCC_Single(b *testing.B) {
	benchTPCC(b, func() (*bench.System, error) {
		return bench.NewSingle("single", 0)
	})
}

// --- Fig. 10: data sizes ---

func benchDataSize(b *testing.B, rows int) {
	cfg := sysbench.DefaultConfig(rows)
	sys := mustSystem(b, func() (*bench.System, error) { return bench.NewSSJ(bench.Topology{Sources: 2, MaxCon: 4}) })
	loadSysbench(b, sys, cfg)
	runTx(b, sys, cfg.ReadWrite())
}

func BenchmarkFig10_Rows20k(b *testing.B)  { benchDataSize(b, 20000) }
func BenchmarkFig10_Rows100k(b *testing.B) { benchDataSize(b, 100000) }

// --- Fig. 13: transaction types ---

func benchTxType(b *testing.B, typ transaction.Type) {
	cfg := sysbench.DefaultConfig(benchRows)
	sys := mustSystem(b, func() (*bench.System, error) {
		return bench.NewSSJ(bench.Topology{Sources: 2, MaxCon: 4, TxType: typ})
	})
	loadSysbench(b, sys, cfg)
	runTx(b, sys, cfg.ReadWrite())
}

func BenchmarkFig13_Local(b *testing.B) { benchTxType(b, transaction.Local) }
func BenchmarkFig13_XA(b *testing.B)    { benchTxType(b, transaction.XA) }
func BenchmarkFig13_Base(b *testing.B)  { benchTxType(b, transaction.Base) }

// --- Fig. 14: binding vs common join ---

func benchJoin(b *testing.B, binding bool) {
	rows := benchRows / 10
	sys := mustSystem(b, func() (*bench.System, error) {
		return bench.NewSSJ(bench.Topology{
			Sources: 2, TablesPerSource: 10, MaxCon: 4,
			Tables: []string{"t_a", "t_b"}, Binding: binding,
		})
	})
	if err := bench.PrepareOn(sys, func(c bench.Client) error {
		for _, table := range []string{"t_a", "t_b"} {
			cfg := sysbench.DefaultConfig(rows)
			cfg.Table = table
			if err := sysbench.Prepare(c, cfg); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	runTx(b, sys, func(c bench.Client, rng *rand.Rand) error {
		id := int64(rng.Intn(rows) + 1)
		_, err := c.Query("SELECT a.c, b.c FROM t_a a JOIN t_b b ON a.id = b.id WHERE a.id IN (?, ?)",
			sqltypes.NewInt(id), sqltypes.NewInt(id+1))
		return err
	})
}

func BenchmarkFig14_BindingJoin(b *testing.B) { benchJoin(b, true) }
func BenchmarkFig14_CommonJoin(b *testing.B)  { benchJoin(b, false) }

// --- Fig. 15: MaxCon ---

func benchMaxCon(b *testing.B, maxCon int) {
	cfg := sysbench.DefaultConfig(benchRows)
	sys := mustSystem(b, func() (*bench.System, error) {
		return bench.NewSSJ(bench.Topology{
			Sources: 2, MaxCon: maxCon, Latency: 200 * time.Microsecond,
		})
	})
	loadSysbench(b, sys, cfg)
	runTx(b, sys, func(c bench.Client, rng *rand.Rand) error {
		_, err := c.Query("SELECT COUNT(*) FROM sbtest WHERE k BETWEEN ? AND ?",
			sqltypes.NewInt(1), sqltypes.NewInt(int64(rng.Intn(cfg.Rows)+1)))
		return err
	})
}

func BenchmarkFig15_MaxCon1(b *testing.B)  { benchMaxCon(b, 1) }
func BenchmarkFig15_MaxCon5(b *testing.B)  { benchMaxCon(b, 5) }
func BenchmarkFig15_MaxCon20(b *testing.B) { benchMaxCon(b, 20) }

// --- Ablations ---

// BenchmarkAblation_ParserCache quantifies the node-side prepared
// statement cache (DESIGN.md: cached parse vs full parse).
func BenchmarkAblation_ParserCache(b *testing.B) {
	const sql = "SELECT c FROM sbtest_3 WHERE id = ? AND k > 100 ORDER BY c LIMIT 10"
	b.Run("parse-every-time", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sqlparser.Parse(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_MergerStreamVsMemory compares the stream group merger
// (pre-sorted node results) against the hash memory merger on the same
// partial aggregates (paper Section VI-E's trade-off).
func BenchmarkAblation_MergerStreamVsMemory(b *testing.B) {
	const nodes = 8
	const groupsPerNode = 512
	mk := func(ordered bool) []resource.ResultSet {
		sets := make([]resource.ResultSet, nodes)
		for n := 0; n < nodes; n++ {
			rows := make([]sqltypes.Row, groupsPerNode)
			for g := 0; g < groupsPerNode; g++ {
				rows[g] = sqltypes.Row{
					sqltypes.NewString(fmt.Sprintf("group-%04d", g)),
					sqltypes.NewInt(int64(n + g)),
				}
			}
			if !ordered {
				rand.New(rand.NewSource(int64(n))).Shuffle(len(rows), func(i, j int) {
					rows[i], rows[j] = rows[j], rows[i]
				})
			}
			sets[n] = resource.NewSliceResultSet([]string{"name", "SUM(x)"}, rows)
		}
		return sets
	}
	aggs := []rewrite.AggregateItem{{Index: 1, Kind: rewrite.AggSum}}
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := &rewrite.SelectContext{
				GroupBy:      []rewrite.OrderKey{{Index: 0}},
				OrderBy:      []rewrite.OrderKey{{Index: 0}},
				GroupOrdered: true,
				Aggregates:   aggs,
			}
			rs, err := merge.Merge(mk(true), ctx)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := resource.ReadAll(rs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := &rewrite.SelectContext{
				GroupBy:    []rewrite.OrderKey{{Index: 0}},
				Aggregates: aggs,
			}
			rs, err := merge.Merge(mk(false), ctx)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := resource.ReadAll(rs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_RouteNarrowing isolates the router's contribution: a
// point query against the intelligent router vs the naive broadcast twin.
func BenchmarkAblation_RouteNarrowing(b *testing.B) {
	cfg := sysbench.DefaultConfig(benchRows)
	point := func(c bench.Client, rng *rand.Rand) error {
		_, err := c.Query("SELECT c FROM sbtest WHERE id = ?", sqltypes.NewInt(int64(rng.Intn(cfg.Rows)+1)))
		return err
	}
	b.Run("standard-route", func(b *testing.B) {
		sys := mustSystem(b, func() (*bench.System, error) { return bench.NewSSJ(bench.Topology{Sources: 2, MaxCon: 4}) })
		loadSysbench(b, sys, cfg)
		runTx(b, sys, point)
	})
	b.Run("broadcast-route", func(b *testing.B) {
		sys := mustSystem(b, func() (*bench.System, error) { return bench.NewNaive(bench.Topology{Sources: 2, MaxCon: 4}) })
		loadSysbench(b, sys, cfg)
		runTx(b, sys, point)
	})
}
