module shardingsphere

go 1.22
