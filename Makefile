GO ?= go

.PHONY: build test race bench bench-plancache vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: the full suite must also pass under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

bench-plancache:
	$(GO) test -run xxx -bench 'PointSelect|RepeatedShape' -benchtime 2s ./internal/bench/
