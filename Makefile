GO ?= go

.PHONY: build test race bench bench-plancache vet check chaos

# Pre-PR gate: static checks plus the full suite under the race
# detector. Run this before every PR.
check: vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: the full suite must also pass under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fault-injection smoke suite: chaos faults, breaker transitions,
# retry/failover, fail-fast fan-out and pool resilience, under -race.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Breaker|FailFast|Retry|Transient|Defunct|AcquireCtx|Exhaustion|Deadline|Timeout' \
		./internal/chaos/ ./internal/governor/ ./internal/exec/ ./internal/resource/ ./internal/distsql/

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

bench-plancache:
	$(GO) test -run xxx -bench 'PointSelect|RepeatedShape' -benchtime 2s ./internal/bench/
