GO ?= go

.PHONY: build test race bench bench-plancache bench-remote bench-stream bench-storm bench-txn bench-digest vet check chaos fuzz-smoke race-pipeline obs-smoke stream-smoke storm-smoke txn-smoke digest-smoke

# Pre-PR gate: static checks, the full suite under the race detector,
# the wire-protocol fuzz smoke, the pipelined-mux concurrency tests and
# the observability-, streaming-, storm-, transaction- and workload-plane
# smokes. Run this before every PR.
check: vet race race-pipeline fuzz-smoke obs-smoke stream-smoke storm-smoke txn-smoke digest-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: the full suite must also pass under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fault-injection smoke suite: chaos faults, breaker transitions,
# retry/failover, fail-fast fan-out and pool resilience, under -race.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Breaker|FailFast|Retry|Transient|Defunct|AcquireCtx|Exhaustion|Deadline|Timeout' \
		./internal/chaos/ ./internal/governor/ ./internal/exec/ ./internal/resource/ ./internal/distsql/

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

bench-plancache:
	$(GO) test -run xxx -bench 'PointSelect|RepeatedShape' -benchtime 2s ./internal/bench/

# Wire protocol v2 vs v1 throughput + socket-budget comparison, and the
# paired trace-propagation overhead measurement.
bench-remote:
	$(GO) test -run 'TestRemoteV2VsV1|TestTraceOverhead' -v ./internal/bench/

# Streaming scatter-gather measurement: bounded-memory merge vs full
# drain (peak live heap), time-to-first-row, and early cursor stop over
# two wire-v2 data nodes. Numbers feed EXPERIMENTS.md.
bench-stream:
	$(GO) test -run 'TestStreamMemoryAndTTFR' -v -count=1 ./internal/bench/

# Fast streaming acceptance drill: cross-shard ORDER BY order, bounded
# batch windows, early-stop lease release — plus the mid-stream
# cancellation/kill suite and the chaos hang during a streaming merge,
# all under -race.
stream-smoke:
	$(GO) test -race -run 'TestStreamSmoke' -v ./internal/bench/
	$(GO) test -race -run 'TestCursorCancelEarlyStop|TestStreamWindowBounded|TestStreamingLimitStopsShards|TestClientAbandonCascadesCancelToShards|TestClientKillMidStreamReleasesEverything|TestDatanodeKillMidStream' \
		./internal/proxy/
	$(GO) test -race -run 'TestChaosHangDuringStreamingMerge' ./internal/distsql/

# Overload-protection smoke: a connection storm at >= 3x saturation must
# keep admitted p99 inside the unloaded envelope, shed the excess with
# the typed overload error (no silent drops) and leak no goroutines,
# plus the admission/drain/slow-loris unit suite under -race. The storm
# itself runs without -race — the 2x latency envelope is a timing
# criterion and the race detector distorts it.
storm-smoke:
	$(GO) test -run 'TestStormSmoke' -v -count=1 ./internal/bench/
	$(GO) test -race -run 'TestStatementShedTypedError|TestConnCapTypedRejection|TestSlowLorisReclaimed|TestDrainNotDrop|TestAcceptTransientRetry|TestAcceptPermanentErrorStillFatal' \
		./internal/proxy/

# Longer storm run for the EXPERIMENTS.md measurement.
bench-storm:
	STORM_DURATION=3s $(GO) test -run 'TestStormSmoke' -v -count=1 ./internal/bench/

# Transaction-plane smoke: the full commit-path suite (fast path, lazy
# XA upgrade, group-commit race, prepare-failure cleanup, deadlines,
# recovery), the coordinator-crash chaos acceptance and the in-doubt
# wire-contract test, all under -race.
txn-smoke:
	$(GO) test -race -count=1 ./internal/transaction/
	$(GO) test -race -run 'TestTxnChaos' -count=1 ./internal/distsql/
	$(GO) test -race -run 'TestInDoubtOverWire' -count=1 ./internal/proxy/

# TPC-C Payment commit-path benchmark: legacy sequential 2PC vs parallel
# phases + group commit (cross-shard) and vs the single-shard 1PC fast
# path. The acceptance gate is >= 2x cross-shard throughput at 32
# workers. Numbers feed EXPERIMENTS.md.
bench-txn:
	TXN_DURATION=3s $(GO) test -run 'TestTxnThroughput' -v -count=1 ./internal/bench/

# Observability-plane smoke: a proxy kernel over two wire-v2 data nodes
# runs a traced statement (remote child spans + wire gap must appear)
# and SHOW CLUSTER METRICS (merged counts must equal node sums), -race.
obs-smoke:
	$(GO) test -race -run 'TestObsSmoke' -v ./internal/distsql/

# Workload-observability smoke: a proxy kernel over two wire-v2 data
# nodes runs a skewed 8-shard storm; SHOW SHARD HEAT must rank the hot
# shard first, SHOW HOT KEYS the hot key, SHOW STATEMENT DIGESTS must
# carry exact counts, and SHOW CLUSTER METRICS must merge the datanodes'
# per-table heat counters to the exact node sum, -race.
digest-smoke:
	$(GO) test -race -run 'TestDigestSmoke' -v ./internal/distsql/

# Paired interleaved overhead measurement for the always-on workload
# plane (digests + heat) on a plan-cached point select. The acceptance
# bar is <2% median overhead. Numbers feed EXPERIMENTS.md.
bench-digest:
	$(GO) test -run 'TestDigestOverheadInterleaved' -v -count=1 ./internal/bench/

# Short fuzz pass over the frame reader, row decoder and trace-context
# trailer. `go test` accepts one -fuzz target per invocation, hence
# separate runs.
fuzz-smoke:
	$(GO) test -fuzz 'FuzzReadFrame' -fuzztime 10s -run '^$$' ./internal/protocol/
	$(GO) test -fuzz 'FuzzDecodeRow' -fuzztime 10s -run '^$$' ./internal/protocol/
	$(GO) test -fuzz 'FuzzTraceContext' -fuzztime 10s -run '^$$' ./internal/protocol/

# Multiplexed wire-protocol concurrency suite under the race detector:
# pipelined streams sharing one socket, hung-stream isolation, batch
# semantics and the mux socket budget.
race-pipeline:
	$(GO) test -race -run 'TestPipelinedConcurrency|TestExecBatchPipelined|TestHungStreamDoesNotStallSiblings|TestMuxSocketBudget' \
		./internal/proxy/
